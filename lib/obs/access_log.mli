(** Structured JSONL sink for access and slow-query logs.

    One JSON object per line, field order preserved exactly as given,
    flushed per line; a single mutex serializes concurrent writers so
    lines from different daemon connection threads never interleave.
    Writes after {!close} are silently dropped (the daemon's drain
    path races late connection handlers by design). *)

type t

val open_ : string -> t
(** Open (append, create 0644) a JSONL sink at [path]. *)

val write : t -> (string * Ucp_util.Json.t) list -> unit
(** Append one object line with the fields in the given order. *)

val close : t -> unit
