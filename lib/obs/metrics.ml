(* Thread-safe metrics registry.  Instruments are registered (and
   looked up) under one mutex; the hot-path operations — counter adds,
   gauge stores, histogram observations — are lock-free atomics guarded
   by a single [Atomic.get] on the enabled flag, so a disabled registry
   costs one load per call site and records nothing. *)

let enabled_flag = Atomic.make false

let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* Atomic float accumulation: the value read is the same boxed float we
   CAS against, so the loop retries exactly on concurrent updates. *)
let rec atomic_fadd cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_fadd cell x

type counter = int Atomic.t
type fcounter = float Atomic.t
type gauge = float Atomic.t

type histogram = {
  bounds : float array;  (* inclusive upper bounds, strictly increasing *)
  bucket_counts : int Atomic.t array;  (* length (bounds) + 1: last is +inf *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type instrument =
  | I_counter of counter
  | I_fcounter of fcounter
  | I_gauge of gauge
  | I_histogram of histogram

type value =
  | Counter of int
  | Fcounter of float
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;
      sum : float;
      count : int;
    }

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let kind_name = function
  | I_counter _ -> "counter"
  | I_fcounter _ -> "fcounter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let register name make match_existing =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> (
        match match_existing existing with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s is already registered as a %s" name
               (kind_name existing)))
      | None ->
        let instrument, v = make () in
        Hashtbl.add registry name instrument;
        v)

let counter name =
  register name
    (fun () ->
      let c = Atomic.make 0 in
      (I_counter c, c))
    (function I_counter c -> Some c | _ -> None)

let fcounter name =
  register name
    (fun () ->
      let c = Atomic.make 0.0 in
      (I_fcounter c, c))
    (function I_fcounter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = Atomic.make 0.0 in
      (I_gauge g, g))
    (function I_gauge g -> Some g | _ -> None)

let histogram name ~buckets =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: empty bucket list";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
  done;
  register name
    (fun () ->
      let h =
        {
          bounds = Array.copy buckets;
          bucket_counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.0;
          h_count = Atomic.make 0;
        }
      in
      (I_histogram h, h))
    (function
      | I_histogram h when h.bounds = buckets -> Some h
      | I_histogram _ ->
        invalid_arg
          (Printf.sprintf "Metrics: histogram %s re-registered with different buckets"
             name)
      | _ -> None)

let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c n)
let incr c = add c 1
let fadd c x = if Atomic.get enabled_flag then atomic_fadd c x
let set g x = if Atomic.get enabled_flag then Atomic.set g x

let bucket_index h x =
  (* first bound >= x; the overflow bucket catches the rest *)
  let n = Array.length h.bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if h.bounds.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let observe h x =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.bucket_counts.(bucket_index h x) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_fadd h.h_sum x
  end

let read_instrument = function
  | I_counter c -> Counter (Atomic.get c)
  | I_fcounter c -> Fcounter (Atomic.get c)
  | I_gauge g -> Gauge (Atomic.get g)
  | I_histogram h ->
    Histogram
      {
        bounds = Array.copy h.bounds;
        counts = Array.map Atomic.get h.bucket_counts;
        sum = Atomic.get h.h_sum;
        count = Atomic.get h.h_count;
      }

let dump () =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      Hashtbl.fold (fun name i acc -> (name, read_instrument i) :: acc) registry []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let find name =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () -> Option.map read_instrument (Hashtbl.find_opt registry name))

let reset () =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | I_counter c -> Atomic.set c 0
          | I_fcounter c -> Atomic.set c 0.0
          | I_gauge g -> Atomic.set g 0.0
          | I_histogram h ->
            Array.iter (fun b -> Atomic.set b 0) h.bucket_counts;
            Atomic.set h.h_sum 0.0;
            Atomic.set h.h_count 0)
        registry)
