type level = Debug | Info | Warn | Error | Quiet

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3
  | Quiet -> 4

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | "quiet" | "off" | "none" -> Ok Quiet
  | s -> Error (Printf.sprintf "UCP_LOG=%s: expected debug|info|warn|error|quiet" s)

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

(* A bad UCP_LOG value must not crash the tool at module-init time
   (the sweep may be hours from its first log line); fall back on the
   default and complain once on the first emission instead. *)
let init_complaint = ref None

let default_level =
  match Sys.getenv_opt "UCP_LOG" with
  | None | Some "" -> Warn
  | Some s -> (
    match level_of_string s with
    | Ok l -> l
    | Error msg ->
      init_complaint := Some msg;
      Warn)

let current = Atomic.make default_level

let set_level l = Atomic.set current l
let level () = Atomic.get current
let enabled l = severity l >= severity (Atomic.get current) && l <> Quiet

(* One process-wide sink lock: a log line is written with a single
   [output_string] under the lock, so lines from concurrent domains
   never interleave mid-line. *)
let sink_mutex = Mutex.create ()

let out line =
  Mutex.lock sink_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink_mutex)
    (fun () ->
      output_string stderr (line ^ "\n");
      flush stderr)

let emit l msg =
  (match !init_complaint with
  | Some complaint ->
    init_complaint := None;
    out (Printf.sprintf "ucp: warn: %s (falling back to warn)" complaint)
  | None -> ());
  if enabled l then
    out (Printf.sprintf "ucp: %s: %s" (level_to_string l) msg)

let debug fmt = Printf.ksprintf (emit Debug) fmt
let info fmt = Printf.ksprintf (emit Info) fmt
let warn fmt = Printf.ksprintf (emit Warn) fmt
let error fmt = Printf.ksprintf (emit Error) fmt
