(** Prometheus text exposition for the {!Metrics} registry.

    Registry names may carry a literal label set —
    [serve_latency_s{tier="cache"}] — which {!render} splits into a
    base name and labels so one [# TYPE] line covers the family and
    histogram suffixes compose with the labels:

    {v
    # TYPE serve_latency_s histogram
    serve_latency_s_bucket{tier="cache",le="0.001"} 12
    ...
    serve_latency_s_bucket{tier="cache",le="+Inf"} 14
    serve_latency_s_sum{tier="cache"} 0.42
    serve_latency_s_count{tier="cache"} 14
    v}

    {!render} is pure — it formats whatever dump it is given — so
    tests can pin its output byte-exactly.  {!parse}/{!histograms}
    invert it for [ucp top] and the CI smoke. *)

type sample = {
  s_base : string;  (** metric name without the label set *)
  s_labels : (string * string) list;  (** in exposition order *)
  s_value : float;
}

type hist = {
  h_base : string;
  h_labels : (string * string) list;  (** without [le] *)
  h_bounds : float array;  (** finite upper bounds, increasing *)
  h_counts : int array;  (** per-bucket counts, length [bounds + 1] *)
  h_sum : float;
  h_count : int;
}

val render : (string * Metrics.value) list -> string
(** Exposition text for a {!Metrics.dump}-shaped list.  Counters and
    fcounters render as [counter], gauges as [gauge], histograms as
    cumulative [_bucket]/[_sum]/[_count] rows with a [+Inf] bucket. *)

val parse : string -> (sample list, string) result
(** Parse exposition text back into samples ([# ] comment and blank
    lines are skipped).  Strict: any malformed sample line fails. *)

val histograms : sample list -> hist list
(** Reassemble histogram families from [_bucket]/[_sum]/[_count]
    samples, de-cumulating the bucket rows; sorted by (base, labels).
    Non-histogram samples are ignored. *)

val quantile : bounds:float array -> counts:int array -> float -> float
(** Nearest-rank quantile over per-bucket counts: the inclusive upper
    bound of the bucket holding the rank — [+inf] when it lands in the
    overflow bucket, [nan] when the histogram is empty. *)

val fmt_float : float -> string
(** The number format used by {!render}: integers without exponent,
    [+Inf]/[-Inf]/[NaN] spelled as Prometheus expects. *)
