(* Request-scoped trace context: deterministic 64-bit ids plus an
   ambient (execution-scoped) binding.

   Ids are derived with SplitMix64 so a client seeded with [--seed N]
   assigns the same trace id to the same request on every run — the
   property the CI byte-compares access logs on.  The ambient binding
   is keyed by (domain, thread): daemon connection handlers are
   systhreads sharing domain 0's DLS, so plain [Domain.DLS] would leak
   one request's context into another.  The table is touched once per
   [with_ctx] / [current], never on an un-instrumented path. *)

type t = { trace_id : int64; span_id : int64 }

(* ------------------------------------------------------------------ *)
(* deterministic id derivation (SplitMix64 finalizer) *)

let golden = 0x9e3779b97f4a7c15L

let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* id 0 is reserved as "absent" in a few textual contexts; remap it *)
let nonzero z = if Int64.equal z 0L then golden else z

let derive_id ~seed ~index =
  nonzero
    (mix (Int64.add (Int64.mul (Int64.of_int seed) golden) (Int64.of_int index)))

let root trace_id = { trace_id; span_id = mix trace_id }
let derive ~seed ~index = root (derive_id ~seed ~index)
let child c = { c with span_id = mix (Int64.logxor c.trace_id (mix c.span_id)) }

(* ------------------------------------------------------------------ *)
(* textual form: fixed-width lowercase hex, 16 chars *)

let to_hex id = Printf.sprintf "%016Lx" id

let of_hex s =
  let ok =
    String.length s = 16
    && String.for_all
         (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'))
         s
  in
  if not ok then None
  else
    (* parse in two halves so the top bit never overflows of_string *)
    let half sub = Int64.of_string ("0x" ^ sub) in
    let hi = half (String.sub s 0 8) and lo = half (String.sub s 8 8) in
    Some (Int64.logor (Int64.shift_left hi 32) lo)

let trace_hex c = to_hex c.trace_id
let span_hex c = to_hex c.span_id

(* ------------------------------------------------------------------ *)
(* ambient context, keyed by the executing (domain, thread) *)

let ambient : (int * int, t) Hashtbl.t = Hashtbl.create 64
let amutex = Mutex.create ()
let self_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let current () =
  Mutex.lock amutex;
  let c = Hashtbl.find_opt ambient (self_key ()) in
  Mutex.unlock amutex;
  c

let with_ctx c f =
  let k = self_key () in
  Mutex.lock amutex;
  let prev = Hashtbl.find_opt ambient k in
  Hashtbl.replace ambient k c;
  Mutex.unlock amutex;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock amutex;
      (match prev with
      | Some p -> Hashtbl.replace ambient k p
      | None -> Hashtbl.remove ambient k);
      Mutex.unlock amutex)
    f

let with_ctx_opt c f = match c with None -> f () | Some c -> with_ctx c f
