(* Structured tracing: lightweight spans recorded into per-domain
   ring buffers and exported as Chrome trace_event JSON (loadable in
   Perfetto / chrome://tracing).

   Each domain appends completed spans to its own bounded ring — the
   only shared structure is a registry of rings, locked once per domain
   lifetime when the domain records its first span.  The ring holds the
   {e newest} [capacity] spans; once full, each append overwrites the
   oldest span and bumps {!dropped} (and the
   [trace_spans_dropped_total] metrics counter), so a long-running
   --trace'd daemon keeps a window onto recent requests instead of
   growing without bound.

   The per-ring mutex exists for the daemon: its connection handlers
   are systhreads sharing domain 0, so one domain state can be mutated
   from several threads.  While tracing is disabled (the default)
   [with_span] runs its body directly after a single [Atomic.get], so
   instrumented code has no measurable overhead in an untraced run. *)

type arg = Int of int | Float of float | Str of string

type span = {
  span_name : string;
  ts_us : float;  (* start, microseconds since [start ()] *)
  dur_us : float;
  tid : int;  (* numeric id of the recording domain *)
  depth : int;  (* nesting depth within its domain, 0 = top level *)
  args : (string * arg) list;
}

type open_span = {
  o_name : string;
  o_t0 : float;
  o_depth : int;
  mutable o_args : (string * arg) list;
}

let dummy_span =
  { span_name = ""; ts_us = 0.0; dur_us = 0.0; tid = 0; depth = 0; args = [] }

type dstate = {
  tid : int;
  dmutex : Mutex.t;  (* daemon systhreads share one domain's state *)
  mutable stack : open_span list;  (* innermost first *)
  mutable ring : span array;  (* newest [capacity] completed spans *)
  mutable head : int;  (* next write slot *)
  mutable filled : int;  (* valid entries, <= Array.length ring *)
}

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0

(* per-domain ring capacity; applied to new domain states immediately
   and to existing ones at the next [start]/[clear] *)
let default_capacity = 65_536
let capacity_req = Atomic.make default_capacity

(* total spans overwritten before export, across all rings *)
let dropped_total = Atomic.make 0
let dropped_metric = lazy (Metrics.counter "trace_spans_dropped_total")

(* every domain that ever recorded a span, so [spans]/[export] can
   collect buffers even after the worker domains have terminated *)
let registry : dstate list ref = ref []
let registry_mutex = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          tid = (Domain.self () :> int);
          dmutex = Mutex.create ();
          stack = [];
          ring = Array.make (Atomic.get capacity_req) dummy_span;
          head = 0;
          filled = 0;
        }
      in
      Mutex.lock registry_mutex;
      registry := st :: !registry;
      Mutex.unlock registry_mutex;
      st)

let enabled () = Atomic.get enabled_flag

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  Atomic.set capacity_req n

let capacity () = Atomic.get capacity_req
let dropped () = Atomic.get dropped_total

let clear () =
  Mutex.lock registry_mutex;
  let cap = Atomic.get capacity_req in
  List.iter
    (fun st ->
      Mutex.lock st.dmutex;
      st.stack <- [];
      if Array.length st.ring <> cap then st.ring <- Array.make cap dummy_span
      else Array.fill st.ring 0 cap dummy_span;
      st.head <- 0;
      st.filled <- 0;
      Mutex.unlock st.dmutex)
    !registry;
  Atomic.set dropped_total 0;
  Mutex.unlock registry_mutex

let start () =
  clear ();
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

(* caller holds [st.dmutex] *)
let append st s =
  let cap = Array.length st.ring in
  st.ring.(st.head) <- s;
  st.head <- (st.head + 1) mod cap;
  if st.filled < cap then st.filled <- st.filled + 1
  else begin
    (* overwrote the oldest span *)
    Atomic.incr dropped_total;
    Metrics.incr (Lazy.force dropped_metric)
  end

let with_span ~name ?(args = []) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = Domain.DLS.get key in
    (* requests carry their trace id into every span they open, so the
       exported trace shows one connected tree per request *)
    let args =
      match Ctx.current () with
      | Some c when not (List.mem_assoc "trace_id" args) ->
        ("trace_id", Str (Ctx.trace_hex c)) :: args
      | Some _ | None -> args
    in
    Mutex.lock st.dmutex;
    let o =
      { o_name = name; o_t0 = now_us (); o_depth = List.length st.stack; o_args = args }
    in
    st.stack <- o :: st.stack;
    Mutex.unlock st.dmutex;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock st.dmutex;
        (match st.stack with
        | top :: rest when top == o -> st.stack <- rest
        | _ ->
          (* a child span leaked past its parent's close; drop down to
             (and including) our frame so the stack stays consistent *)
          let rec pop = function
            | top :: rest -> if top == o then rest else pop rest
            | [] -> []
          in
          st.stack <- pop st.stack);
        append st
          {
            span_name = o.o_name;
            ts_us = o.o_t0;
            dur_us = now_us () -. o.o_t0;
            tid = st.tid;
            depth = o.o_depth;
            args = List.rev o.o_args;
          };
        Mutex.unlock st.dmutex)
      f
  end

let set_arg name value =
  if Atomic.get enabled_flag then begin
    let st = Domain.DLS.get key in
    Mutex.lock st.dmutex;
    (match st.stack with
    | o :: _ ->
      o.o_args <- (name, value) :: List.filter (fun (k, _) -> k <> name) o.o_args
    | [] -> ());
    Mutex.unlock st.dmutex
  end

(* Collect the completed spans of every domain, oldest first.  Each
   ring is snapshotted under its own mutex, so collection is safe even
   while daemon threads are still recording. *)
let spans () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  let all =
    List.concat_map
      (fun st ->
        Mutex.lock st.dmutex;
        let cap = Array.length st.ring in
        let out =
          List.init st.filled (fun i ->
              st.ring.((st.head - st.filled + i + (2 * cap)) mod cap))
        in
        Mutex.unlock st.dmutex;
        out)
      states
  in
  List.sort (fun a b -> compare (a.ts_us, a.tid) (b.ts_us, b.tid)) all

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let json_of_arg = function
  | Int n -> Ucp_util.Json.Num (float_of_int n)
  | Float x -> Ucp_util.Json.Num x
  | Str s -> Ucp_util.Json.Str s

let json_of_span s =
  let base =
    [
      ("name", Ucp_util.Json.Str s.span_name);
      ("cat", Ucp_util.Json.Str "ucp");
      ("ph", Ucp_util.Json.Str "X");
      ("ts", Ucp_util.Json.Num s.ts_us);
      ("dur", Ucp_util.Json.Num s.dur_us);
      ("pid", Ucp_util.Json.Num 1.0);
      ("tid", Ucp_util.Json.Num (float_of_int s.tid));
    ]
  in
  let args =
    match s.args with
    | [] -> []
    | args ->
      [ ("args", Ucp_util.Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
  in
  Ucp_util.Json.Obj (base @ args)

let to_json () =
  Ucp_util.Json.Obj
    [
      ("traceEvents", Ucp_util.Json.Arr (List.map json_of_span (spans ())));
      ("displayTimeUnit", Ucp_util.Json.Str "ms");
    ]

let export path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     let json = Ucp_util.Json.to_string (to_json ()) in
     output_string oc json;
     output_char oc '\n'
   with
  | () -> close_out oc
  | exception exn ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise exn);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* reading a recorded trace back (the `ucp trace` subcommand and the
   round-trip tests) *)

let span_of_json j =
  let module J = Ucp_util.Json in
  let str k = Option.bind (J.member k j) J.to_str in
  let num k = Option.bind (J.member k j) J.to_float in
  match (str "name", str "ph", num "ts", num "dur", num "tid") with
  | Some span_name, Some "X", Some ts_us, Some dur_us, Some tid ->
    let args =
      match J.member "args" j with
      | Some (J.Obj members) ->
        List.map
          (fun (k, v) ->
            match v with
            | J.Num x when Float.is_integer x -> (k, Int (int_of_float x))
            | J.Num x -> (k, Float x)
            | J.Str s -> (k, Str s)
            | _ -> (k, Str (J.to_string v)))
          members
      | _ -> []
    in
    Ok { span_name; ts_us; dur_us; tid = int_of_float tid; depth = 0; args }
  | _ -> Error (Printf.sprintf "not a complete span event: %s" (Ucp_util.Json.to_string j))

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let module J = Ucp_util.Json in
  match J.parse src with
  | Error msg -> Error msg
  | Ok j -> (
    match Option.bind (J.member "traceEvents" j) J.to_list with
    | None -> Error "missing \"traceEvents\" array"
    | Some events ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
          match span_of_json e with
          | Ok s -> collect (s :: acc) rest
          | Error msg -> Error msg)
      in
      collect [] events)
