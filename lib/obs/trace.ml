(* Structured tracing: lightweight spans recorded into per-domain
   buffers and exported as Chrome trace_event JSON (loadable in
   Perfetto / chrome://tracing).

   Each domain appends completed spans to its own buffer — no lock and
   no cross-domain write on the hot path; the only shared structure is
   a registry of buffers, locked once per domain lifetime when the
   domain records its first span.  While tracing is disabled (the
   default) [with_span] runs its body directly after a single
   [Atomic.get], so instrumented code has no measurable overhead in an
   untraced run. *)

type arg = Int of int | Float of float | Str of string

type span = {
  span_name : string;
  ts_us : float;  (* start, microseconds since [start ()] *)
  dur_us : float;
  tid : int;  (* numeric id of the recording domain *)
  depth : int;  (* nesting depth within its domain, 0 = top level *)
  args : (string * arg) list;
}

type open_span = {
  o_name : string;
  o_t0 : float;
  o_depth : int;
  mutable o_args : (string * arg) list;
}

type dstate = {
  tid : int;
  mutable stack : open_span list;  (* innermost first *)
  mutable closed : span list;  (* completed spans, newest first *)
}

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0

(* every domain that ever recorded a span, so [spans]/[export] can
   collect buffers even after the worker domains have terminated *)
let registry : dstate list ref = ref []
let registry_mutex = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let st = { tid = (Domain.self () :> int); stack = []; closed = [] } in
      Mutex.lock registry_mutex;
      registry := st :: !registry;
      Mutex.unlock registry_mutex;
      st)

let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.lock registry_mutex;
  List.iter
    (fun st ->
      st.stack <- [];
      st.closed <- [])
    !registry;
  Mutex.unlock registry_mutex

let start () =
  clear ();
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

let with_span ~name ?(args = []) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = Domain.DLS.get key in
    let o =
      { o_name = name; o_t0 = now_us (); o_depth = List.length st.stack; o_args = args }
    in
    st.stack <- o :: st.stack;
    Fun.protect
      ~finally:(fun () ->
        (match st.stack with
        | top :: rest when top == o -> st.stack <- rest
        | _ ->
          (* a child span leaked past its parent's close; drop down to
             (and including) our frame so the stack stays consistent *)
          let rec pop = function
            | top :: rest -> if top == o then rest else pop rest
            | [] -> []
          in
          st.stack <- pop st.stack);
        st.closed <-
          {
            span_name = o.o_name;
            ts_us = o.o_t0;
            dur_us = now_us () -. o.o_t0;
            tid = st.tid;
            depth = o.o_depth;
            args = List.rev o.o_args;
          }
          :: st.closed)
      f
  end

let set_arg name value =
  if Atomic.get enabled_flag then begin
    let st = Domain.DLS.get key in
    match st.stack with
    | o :: _ -> o.o_args <- (name, value) :: List.filter (fun (k, _) -> k <> name) o.o_args
    | [] -> ()
  end

(* Collect the completed spans of every domain, oldest first.  Callers
   must have synchronized with the recording domains (e.g. joined the
   worker pool) — the buffers are not locked. *)
let spans () =
  Mutex.lock registry_mutex;
  let all = List.concat_map (fun st -> st.closed) !registry in
  Mutex.unlock registry_mutex;
  List.sort (fun a b -> compare (a.ts_us, a.tid) (b.ts_us, b.tid)) all

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let json_of_arg = function
  | Int n -> Ucp_util.Json.Num (float_of_int n)
  | Float x -> Ucp_util.Json.Num x
  | Str s -> Ucp_util.Json.Str s

let json_of_span s =
  let base =
    [
      ("name", Ucp_util.Json.Str s.span_name);
      ("cat", Ucp_util.Json.Str "ucp");
      ("ph", Ucp_util.Json.Str "X");
      ("ts", Ucp_util.Json.Num s.ts_us);
      ("dur", Ucp_util.Json.Num s.dur_us);
      ("pid", Ucp_util.Json.Num 1.0);
      ("tid", Ucp_util.Json.Num (float_of_int s.tid));
    ]
  in
  let args =
    match s.args with
    | [] -> []
    | args ->
      [ ("args", Ucp_util.Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
  in
  Ucp_util.Json.Obj (base @ args)

let to_json () =
  Ucp_util.Json.Obj
    [
      ("traceEvents", Ucp_util.Json.Arr (List.map json_of_span (spans ())));
      ("displayTimeUnit", Ucp_util.Json.Str "ms");
    ]

let export path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     let json = Ucp_util.Json.to_string (to_json ()) in
     output_string oc json;
     output_char oc '\n'
   with
  | () -> close_out oc
  | exception exn ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise exn);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* reading a recorded trace back (the `ucp trace` subcommand and the
   round-trip tests) *)

let span_of_json j =
  let module J = Ucp_util.Json in
  let str k = Option.bind (J.member k j) J.to_str in
  let num k = Option.bind (J.member k j) J.to_float in
  match (str "name", str "ph", num "ts", num "dur", num "tid") with
  | Some span_name, Some "X", Some ts_us, Some dur_us, Some tid ->
    let args =
      match J.member "args" j with
      | Some (J.Obj members) ->
        List.map
          (fun (k, v) ->
            match v with
            | J.Num x when Float.is_integer x -> (k, Int (int_of_float x))
            | J.Num x -> (k, Float x)
            | J.Str s -> (k, Str s)
            | _ -> (k, Str (J.to_string v)))
          members
      | _ -> []
    in
    Ok { span_name; ts_us; dur_us; tid = int_of_float tid; depth = 0; args }
  | _ -> Error (Printf.sprintf "not a complete span event: %s" (Ucp_util.Json.to_string j))

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let module J = Ucp_util.Json in
  match J.parse src with
  | Error msg -> Error msg
  | Ok j -> (
    match Option.bind (J.member "traceEvents" j) J.to_list with
    | None -> Error "missing \"traceEvents\" array"
    | Some events ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
          match span_of_json e with
          | Ok s -> collect (s :: acc) rest
          | Error msg -> Error msg)
      in
      collect [] events)
