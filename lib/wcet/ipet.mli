(** Implicit Path Enumeration Technique [11] on the expanded graph.

    Encodes flow conservation over the VIVU-expanded nodes (iteration
    edges included) with loop-bound constraints, and maximizes
    Σ t(v)·n(v) with the exact-rational ILP solver.  On the expanded
    acyclic graph this coincides with the longest-path computation of
    {!Wcet}; the agreement is property-tested and the ILP route is kept
    as the reference implementation (and for irregular flow constraints
    a downstream user might add). *)

type result = {
  tau : int;  (** optimal objective: τ_w in cycles *)
  counts : int array;  (** per expanded node: n_w in the ILP optimum *)
}

val build : Wcet.t -> Ucp_lp.Simplex.problem * int
(** The raw IPET flow problem over the expanded graph, plus the number
    of node variables [n] (variables [0..n-1] are per-node counts; edge,
    entry and exit flows follow).  Exposed so an independent checker
    ({!Ucp_verify}) can certify solver answers against the model. *)

val solve : ?deadline:Ucp_util.Deadline.t -> Wcet.t -> result
(** Build and solve the IPET ILP for the analyzed program.
    @raise Ucp_lp.Ilp.Node_budget_exhausted if the solver exhausts its
    branch-and-bound node budget (malformed model). *)

val agrees_with_longest_path : Wcet.t -> bool
(** [true] iff the ILP optimum equals the longest-path τ_w. *)

val solve_cfg : ?deadline:Ucp_util.Deadline.t -> Wcet.t -> result
(** The textbook IPET variant on the {e original cyclic CFG} [11]:
    one count per basic block, flow conservation, and per-loop bound
    constraints (back-edge flow ≤ (bound−1) × entry flow).  Block times
    are context-insensitive (the worst over the block's VIVU
    instances), so the optimum is an upper bound of the
    context-sensitive τ_w — the property tests check
    [solve_cfg.tau >= Wcet.tau].  [counts] is indexed by basic block. *)
