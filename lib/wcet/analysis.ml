module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program
module Layout = Ucp_isa.Layout
module Instr = Ucp_isa.Instr
module Abstract = Ucp_cache.Abstract
module Config = Ucp_cache.Config

let fixpoint_iterations_total = lazy (Ucp_obs.Metrics.counter "fixpoint_iterations_total")

type domain = Flat | Functional

type t = {
  vivu : Vivu.t;
  layout : Layout.t;
  config : Config.t;
  policy : Ucp_policy.id;
  plain : bool;
  in_must : Abstract.t array;
  in_may : Abstract.t array;
  classif : Classification.t array array;
  passes : int;
}

let slot_mem_block_of layout ~block ~pos = Layout.mem_block layout ~block ~pos

let prefetch_target layout instr =
  match instr.Instr.kind with
  | Instr.Compute -> None
  | Instr.Prefetch target_uid -> (
    match Layout.mem_block_of_uid layout target_uid with
    | Some mb -> Some mb
    | None ->
      invalid_arg
        (Printf.sprintf "Analysis: prefetch targets unknown uid %d" target_uid))

(* Residency hint for a prefetch/hardware fill: known resident, known
   absent, or unknown — from the states right before the fill. *)
let fill_hint ~with_may must may tb =
  if Abstract.contains must tb then Ucp_policy.Hit
  else if with_may && not (Abstract.contains may tb) then Ucp_policy.Miss
  else Ucp_policy.Unknown

(* Transfer one node: thread both states through its slots, optionally
   recording per-slot classifications. *)
let transfer ~vivu ~layout ~with_may ~hw_next_n ~pinned ~record node_id (must0, may0) =
  let program = Vivu.program vivu in
  let nd = Vivu.node vivu node_id in
  let block = nd.Vivu.block in
  let n_slots = Program.slots program block in
  (* one defensive copy per node, then destructive per-slot updates —
     the inputs stay usable as the node's recorded in-states *)
  let must = Abstract.copy must0 and may = Abstract.copy may0 in
  for pos = 0 to n_slots - 1 do
    let s = slot_mem_block_of layout ~block ~pos in
    if pinned s then begin
      (* locked way: guaranteed hit, no replacement-state effect *)
      match record with
      | Some classif -> classif.(node_id).(pos) <- Classification.Always_hit
      | None -> ()
    end
    else begin
      let cls =
        if Abstract.contains must s then Classification.Always_hit
        else if with_may && not (Abstract.contains may s) then
          Classification.Always_miss
        else Classification.Not_classified
      in
      (match record with
      | Some classif -> classif.(node_id).(pos) <- cls
      | None -> ());
      (* The classification of this very access is fed back into the
         abstract update as a hint: policies with outcome-dependent
         aging (FIFO) need it, LRU/PLRU ignore it. *)
      let hint =
        match cls with
        | Classification.Always_hit -> Ucp_policy.Hit
        | Classification.Always_miss -> Ucp_policy.Miss
        | Classification.Not_classified -> Ucp_policy.Unknown
      in
      Abstract.update_ip ~hint must s;
      if with_may then Abstract.update_ip ~hint may s;
      (* next-N-line-always hardware prefetching [22]: every reference
         also installs the sequentially following blocks *)
      for k = 1 to hw_next_n do
        if not (pinned (s + k)) then begin
          let hint = fill_hint ~with_may must may (s + k) in
          Abstract.fill_ip ~hint must (s + k);
          if with_may then Abstract.fill_ip ~hint may (s + k)
        end
      done
    end;
    let instr = Program.slot_instr program ~block ~pos in
    match prefetch_target layout instr with
    | None -> ()
    | Some tb ->
      if not (pinned tb) then begin
        let hint = fill_hint ~with_may must may tb in
        Abstract.fill_ip ~hint must tb;
        if with_may then Abstract.fill_ip ~hint may tb
      end
  done;
  (must, may)

let run ?deadline ?(with_may = true) ?(hw_next_n = 0) ?pinned
    ?(policy = Ucp_policy.Lru) ?(domain = Flat) vivu layout config =
  (* Plain analyses (no pinned/locked ways, no hardware next-N fills)
     are the only ones the witness-replay audit can certify; record the
     modes so the audit can report an honest [Skipped] verdict. *)
  let plain = Option.is_none pinned && hw_next_n = 0 in
  let pinned = match pinned with Some f -> f | None -> fun _ -> false in
  (* Policies whose must domain only gains precision from definite
     misses (FIFO) force the may analysis on regardless of the caller's
     [?with_may] economy.  Always-miss classifications may then appear
     where the caller expected Not_classified; the WCET bound treats
     the two identically, so only precision improves. *)
  let with_may = with_may || Ucp_policy.needs_may policy in
  let n = Vivu.node_count vivu in
  let program = Vivu.program vivu in
  let cold_must, cold_may =
    match domain with
    | Functional ->
      ( Abstract.empty ~policy config Abstract.Must,
        Abstract.empty ~policy config Abstract.May )
    | Flat ->
      (* Universe of the packed age vectors: the program's own id range
         (dense — raw ids sit near the layout's anchor address) plus
         the overshoot of hardware next-N fills past the program's
         end. *)
      let ids = Layout.mem_block_ids layout in
      let base = match ids with [] -> 0 | mb :: _ -> mb in
      let universe =
        List.fold_left max base ids - base + hw_next_n + 2
      in
      ( Abstract.empty_flat ~policy ~base ~universe config Abstract.Must,
        Abstract.empty_flat ~policy ~base ~universe config Abstract.May )
  in
  let out_states : (Abstract.t * Abstract.t) option array = Array.make n None in
  let in_states : (Abstract.t * Abstract.t) option array = Array.make n None in
  let entry = Vivu.entry vivu in
  let topo = Vivu.topo vivu in
  let join_in node_id =
    let preds = Vivu.all_pred vivu node_id in
    let avail = List.filter_map (fun p -> out_states.(p)) preds in
    match (avail, node_id = entry) with
    | [], true -> Some (cold_must, cold_may)
    | [], false -> None
    | (m0, y0) :: rest, is_entry ->
      let m, y =
        List.fold_left
          (fun (m, y) (m', y') -> (Abstract.join m m', Abstract.join y y'))
          (m0, y0) rest
      in
      if is_entry then Some (Abstract.join m cold_must, Abstract.join y cold_may)
      else Some (m, y)
  in
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    incr passes;
    if !passes > n + 1000 then failwith "Analysis.run: fixpoint did not converge";
    Ucp_util.Deadline.check deadline;
    changed := false;
    Ucp_obs.Trace.with_span ~name:"fixpoint-pass"
      ~args:[ ("pass", Ucp_obs.Trace.Int !passes) ] (fun () ->
    Array.iter
      (fun node_id ->
        match join_in node_id with
        | None -> ()
        | Some input ->
          in_states.(node_id) <- Some input;
          let output =
            transfer ~vivu ~layout ~with_may ~hw_next_n ~pinned ~record:None node_id
              input
          in
          let same =
            match out_states.(node_id) with
            | None -> false
            | Some (m, y) ->
              Abstract.equal m (fst output) && Abstract.equal y (snd output)
          in
          if not same then begin
            out_states.(node_id) <- Some output;
            changed := true
          end)
      topo)
  done;
  Ucp_obs.Metrics.add
    (Lazy.force fixpoint_iterations_total)
    !passes;
  (* Final recording pass from converged in-states. *)
  let classif =
    Array.init n (fun node_id ->
        let nd = Vivu.node vivu node_id in
        Array.make
          (max 1 (Program.slots program nd.Vivu.block))
          Classification.Not_classified)
  in
  let in_must = Array.make n cold_must and in_may = Array.make n cold_may in
  Array.iter
    (fun node_id ->
      let input =
        match in_states.(node_id) with
        | Some s -> s
        | None -> (cold_must, cold_may)
      in
      in_must.(node_id) <- fst input;
      in_may.(node_id) <- snd input;
      ignore
        (transfer ~vivu ~layout ~with_may ~hw_next_n ~pinned ~record:(Some classif)
           node_id input))
    topo;
  { vivu; layout; config; policy; plain; in_must; in_may; classif; passes = !passes }

let vivu t = t.vivu
let layout t = t.layout
let config t = t.config
let policy t = t.policy
let is_plain t = t.plain
let classif t ~node ~pos = t.classif.(node).(pos)
let in_must t node = t.in_must.(node)
let in_may t node = t.in_may.(node)

let slot_mem_block t ~node ~pos =
  let nd = Vivu.node t.vivu node in
  slot_mem_block_of t.layout ~block:nd.Vivu.block ~pos

let prefetch_target_block t ~node ~pos =
  let nd = Vivu.node t.vivu node in
  let instr = Program.slot_instr (Vivu.program t.vivu) ~block:nd.Vivu.block ~pos in
  prefetch_target t.layout instr

let miss_count_bound t =
  let program = Vivu.program t.vivu in
  let total = ref 0 in
  Array.iteri
    (fun node_id per_slot ->
      let nd = Vivu.node t.vivu node_id in
      let n_slots = Program.slots program nd.Vivu.block in
      let misses = ref 0 in
      for pos = 0 to n_slots - 1 do
        if Classification.is_wcet_miss per_slot.(pos) then incr misses
      done;
      total := !total + (Vivu.mult t.vivu node_id * !misses))
    t.classif;
  !total

(* Feed externally-proven facts (the exact-exploration verdicts of
   Ucp_refine) back in as tightened classifications.  The result is a
   fresh value — the caller's analysis is untouched, so unrefined and
   refined bounds can coexist in one record.  Soundness of the
   overrides is the caller's obligation; the audit re-derives the
   exploration and cross-checks. *)
let override_classif t overrides =
  let classif = Array.map Array.copy t.classif in
  List.iter (fun (node, pos, cls) -> classif.(node).(pos) <- cls) overrides;
  { t with classif }

let classification_counts t =
  let program = Vivu.program t.vivu in
  let ah = ref 0 and am = ref 0 and nc = ref 0 in
  Array.iteri
    (fun node_id per_slot ->
      let nd = Vivu.node t.vivu node_id in
      let n_slots = Program.slots program nd.Vivu.block in
      for pos = 0 to n_slots - 1 do
        match per_slot.(pos) with
        | Classification.Always_hit -> incr ah
        | Classification.Always_miss -> incr am
        | Classification.Not_classified -> incr nc
      done)
    t.classif;
  (!ah, !am, !nc)

let fixpoint_passes t = t.passes
