module Vivu = Ucp_cfg.Vivu
module Loops = Ucp_cfg.Loops
module Q = Ucp_lp.Rational
module Simplex = Ucp_lp.Simplex
module Ilp = Ucp_lp.Ilp

type result = {
  tau : int;
  counts : int array;
}

(* Variables: one count per expanded node, one flow per edge (DAG and
   iteration edges), a unit entry flow, and one exit flow per exit node. *)
let build wcet =
  let analysis = wcet.Wcet.analysis in
  let vivu = Analysis.vivu analysis in
  let n = Vivu.node_count vivu in
  let edges = ref [] in
  for u = 0 to n - 1 do
    List.iter (fun v -> edges := (u, v, `Dag) :: !edges) (Vivu.dag_succ vivu u)
  done;
  for v = 0 to n - 1 do
    List.iter (fun u -> edges := (u, v, `Iter) :: !edges) (Vivu.iter_pred vivu v)
  done;
  let edges = Array.of_list (List.rev !edges) in
  let n_edges = Array.length edges in
  let exits = Vivu.exit_nodes vivu in
  let n_exits = List.length exits in
  let var_node v = v in
  let var_edge e = n + e in
  let var_entry = n + n_edges in
  let var_exit i = n + n_edges + 1 + i in
  let num_vars = n + n_edges + 1 + n_exits in
  let constraints = ref [] in
  let row () = Array.make num_vars Q.zero in
  (* flow conservation: in-flow = n_v = out-flow *)
  let in_edges = Array.make n [] and out_edges = Array.make n [] in
  Array.iteri
    (fun e (u, v, _) ->
      out_edges.(u) <- e :: out_edges.(u);
      in_edges.(v) <- e :: in_edges.(v))
    edges;
  let entry = Vivu.entry vivu in
  for v = 0 to n - 1 do
    let r_in = row () in
    r_in.(var_node v) <- Q.one;
    List.iter (fun e -> r_in.(var_edge e) <- Q.sub r_in.(var_edge e) Q.one) in_edges.(v);
    if v = entry then r_in.(var_entry) <- Q.sub r_in.(var_entry) Q.one;
    constraints := (r_in, Simplex.Eq, Q.zero) :: !constraints;
    let r_out = row () in
    r_out.(var_node v) <- Q.one;
    List.iter (fun e -> r_out.(var_edge e) <- Q.sub r_out.(var_edge e) Q.one) out_edges.(v);
    List.iteri (fun i x -> if x = v then r_out.(var_exit i) <- Q.sub r_out.(var_exit i) Q.one) exits;
    constraints := (r_out, Simplex.Eq, Q.zero) :: !constraints
  done;
  (* unit entry flow *)
  let r = row () in
  r.(var_entry) <- Q.one;
  constraints := (r, Simplex.Eq, Q.one) :: !constraints;
  (* loop bounds at rest headers: n_h <= (B-1) * (dag in-flow of h) *)
  let forest = Vivu.forest vivu in
  for v = 0 to n - 1 do
    let nd = Vivu.node vivu v in
    match List.rev nd.Vivu.ctx with
    | (l, Vivu.Rest) :: _ when forest.Loops.loops.(l).Loops.header = nd.Vivu.block ->
      let bound = forest.Loops.loops.(l).Loops.bound in
      let r = row () in
      r.(var_node v) <- Q.one;
      List.iter
        (fun e ->
          let _, _, kind = edges.(e) in
          if kind = `Dag then
            r.(var_edge e) <- Q.sub r.(var_edge e) (Q.of_int (bound - 1)))
        in_edges.(v);
      constraints := (r, Simplex.Le, Q.zero) :: !constraints
    | _ -> ()
  done;
  let objective = Array.make num_vars Q.zero in
  for v = 0 to n - 1 do
    objective.(var_node v) <- Q.of_int wcet.Wcet.node_cycles.(v)
  done;
  ({ Simplex.num_vars; objective; constraints = List.rev !constraints }, n)

let solve ?deadline wcet =
  let problem, n = build wcet in
  match Ilp.maximize ?deadline problem with
  | Ilp.Optimal { value; assignment } ->
    { tau = Q.to_int_exn value; counts = Array.sub assignment 0 n }
  | Ilp.Infeasible -> failwith "Ipet.solve: infeasible flow model"
  | Ilp.Unbounded -> failwith "Ipet.solve: unbounded flow model"

let agrees_with_longest_path wcet =
  let { tau; _ } = solve wcet in
  tau = wcet.Wcet.tau


(* ------------------------------------------------------------------ *)
(* Classical block-level IPET on the original cyclic CFG. *)

let solve_cfg ?deadline wcet =
  let analysis = wcet.Wcet.analysis in
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  let forest = Vivu.forest vivu in
  let n = Ucp_isa.Program.block_count program in
  (* context-insensitive block time: worst over the block's instances *)
  let block_time = Array.make n 0 in
  for v = 0 to Vivu.node_count vivu - 1 do
    let b = (Vivu.node vivu v).Vivu.block in
    block_time.(b) <- max block_time.(b) wcet.Wcet.node_cycles.(v)
  done;
  let edges = ref [] in
  for u = 0 to n - 1 do
    List.iter (fun v -> edges := (u, v) :: !edges) (Ucp_isa.Program.successors program u)
  done;
  let edges = Array.of_list (List.rev !edges) in
  let n_edges = Array.length edges in
  let exits = Ucp_cfg.Cfgraph.exits program in
  let n_exits = List.length exits in
  let var_block b = b in
  let var_edge e = n + e in
  let var_entry = n + n_edges in
  let var_exit i = n + n_edges + 1 + i in
  let num_vars = n + n_edges + 1 + n_exits in
  let constraints = ref [] in
  let row () = Array.make num_vars Q.zero in
  let in_edges = Array.make n [] and out_edges = Array.make n [] in
  Array.iteri
    (fun e (u, v) ->
      out_edges.(u) <- e :: out_edges.(u);
      in_edges.(v) <- e :: in_edges.(v))
    edges;
  let entry = Ucp_isa.Program.entry program in
  for b = 0 to n - 1 do
    let r_in = row () in
    r_in.(var_block b) <- Q.one;
    List.iter (fun e -> r_in.(var_edge e) <- Q.sub r_in.(var_edge e) Q.one) in_edges.(b);
    if b = entry then r_in.(var_entry) <- Q.sub r_in.(var_entry) Q.one;
    constraints := (r_in, Simplex.Eq, Q.zero) :: !constraints;
    let r_out = row () in
    r_out.(var_block b) <- Q.one;
    List.iter (fun e -> r_out.(var_edge e) <- Q.sub r_out.(var_edge e) Q.one) out_edges.(b);
    List.iteri (fun i x -> if x = b then r_out.(var_exit i) <- Q.sub r_out.(var_exit i) Q.one) exits;
    constraints := (r_out, Simplex.Eq, Q.zero) :: !constraints
  done;
  let r = row () in
  r.(var_entry) <- Q.one;
  constraints := (r, Simplex.Eq, Q.one) :: !constraints;
  (* per loop: back-edge flow <= (bound - 1) * entry-edge flow *)
  Array.iter
    (fun (l : Loops.loop) ->
      let r = row () in
      Array.iteri
        (fun e (u, v) ->
          if List.exists (fun (a, b) -> a = u && b = v) l.Loops.back_edges then
            r.(var_edge e) <- Q.add r.(var_edge e) Q.one
          else if v = l.Loops.header && not l.Loops.body.(u) then
            r.(var_edge e) <- Q.sub r.(var_edge e) (Q.of_int (l.Loops.bound - 1)))
        edges;
      constraints := (r, Simplex.Le, Q.zero) :: !constraints)
    forest.Loops.loops;
  let objective = Array.make num_vars Q.zero in
  for b = 0 to n - 1 do
    objective.(var_block b) <- Q.of_int block_time.(b)
  done;
  let problem = { Simplex.num_vars; objective; constraints = List.rev !constraints } in
  match Ilp.maximize ?deadline problem with
  | Ilp.Optimal { value; assignment } ->
    { tau = Q.to_int_exn value; counts = Array.sub assignment 0 n }
  | Ilp.Infeasible -> failwith "Ipet.solve_cfg: infeasible flow model"
  | Ilp.Unbounded -> failwith "Ipet.solve_cfg: unbounded flow model"
