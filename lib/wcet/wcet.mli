(** WCET computation: timing of classified references and the longest
    path over the VIVU-expanded DAG (the WCET scenario of Section 3.3).

    The longest path plays the role of the IPET ILP solution: on the
    expanded acyclic graph with per-node execution multiplicities the
    two coincide (property-tested against {!Ipet}).  It yields the
    per-node WCET-scenario execution counts [n_w] and the memory
    system's total contribution τ{_w} (Equation 3). *)

type t = {
  analysis : Analysis.t;
  model : Ucp_energy.Cacti.t;
  slot_cycles : int array array;
      (** per expanded node and slot: [t_w(r)], the reference's memory
          time in the WCET scenario (per single execution) *)
  node_cycles : int array;  (** per node: sum over its slots *)
  n_w : int array;  (** per node: executions in the WCET scenario *)
  on_path : bool array;
  path : int array;  (** WCET path as expanded node ids, entry first *)
  tau : int;  (** τ_w: total memory contribution to the WCET, cycles *)
}

val compute :
  ?deadline:Ucp_util.Deadline.t ->
  ?with_may:bool ->
  ?hw_next_n:int ->
  ?pinned:(int -> bool) ->
  ?policy:Ucp_policy.id ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Cacti.t ->
  t
(** Full pipeline: layout, VIVU expansion, abstract interpretation,
    timing, longest path.  [~deadline], [~with_may], [~hw_next_n],
    [~pinned] and [~policy] (replacement policy, default LRU) are
    forwarded to {!Analysis.run}. *)

val analyze :
  ?deadline:Ucp_util.Deadline.t ->
  ?with_may:bool ->
  ?hw_next_n:int ->
  ?pinned:(int -> bool) ->
  ?policy:Ucp_policy.id ->
  ?domain:Analysis.domain ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Analysis.t
(** Layout, VIVU expansion and abstract interpretation only — the
    model-independent front half of {!compute}.  The result can be
    shared across technology nodes (it does not depend on the Cacti
    model) and finished per tech with {!of_analysis}. *)

val of_analysis : Analysis.t -> Ucp_energy.Cacti.t -> t
(** Timing + path on an existing analysis. *)

val longest_path : Ucp_cfg.Vivu.t -> node_cycles:int array -> int * int array
(** [(tau, path)] of the weighted longest path, where each node costs
    [node_cycles.(id) * mult id].  Exposed for alternative timing
    classifiers (e.g. locked caches). *)

val path_refs : t -> (int * int) array
(** All references along the WCET path as [(node, pos)], in execution
    order — the reverse sweep of the optimizer walks this backwards. *)

val wcet_misses : t -> int
(** Number of WCET-charged misses along the path, weighted by [n_w]. *)

val residual_prefetch_stall : t -> int
(** Conservative extra WCET cycles charged when prefetches are not
    provably effective.  Every execution of every prefetch instance is
    charged [max 0 (lambda - d)], where [d] is the minimum number of
    instruction slots between the prefetch and the first later access
    of its target block over {e all} walks of the expanded graph —
    following DAG {e and} iteration (wrap-around) edges, since inside a
    loop the first later use can sit across the back edge (each slot
    costs at least one cycle on any execution).  Near zero for
    programs optimized by the paper's criterion (Definition 10
    guarantees effectiveness in the WCET scenario); large for naive
    baselines such as the basic-block-start inserter of [5]. *)

val tau_with_residual : t -> int
(** [tau t + residual_prefetch_stall t] — the sound bound for programs
    with unchecked prefetches. *)

(** {2 Combinatorial flow certificate (the audit fast path)} *)

type flow_cert = {
  fc_x : int array;
      (** per node: X_v, an upper bound on the node-cycle cost of any
          walk suffix starting at (and including) v *)
  fc_lam : int array;
      (** per node: Lam_h, the prepaid per-lap charge of a rest header
          (0 for every other node) *)
}
(** Witness that [tau] bounds every walk of the VIVU execution model.
    Valid iff, with [c_v] the per-node cycles and
    [entry_charge v = (k_v - 1) * Lam_v] at rest headers of per-entry
    budget [k_v = bound - 1]:
    [Lam_h >= 0]; [X_u >= c_u + X_v + entry_charge v] on DAG edges
    (waived into [k_v = 0] headers, which cannot be entered);
    [X_u >= c_u + X_h - Lam_h] on iteration edges; [X_v >= c_v]
    everywhere; and [X_entry = tau].  {!Ucp_verify.certify_ipet} checks
    these conditions with independently re-derived costs in linear
    passes — no simplex or branch-and-bound. *)

val rest_budget : Ucp_cfg.Vivu.t -> int option array
(** [Some (bound - 1)] per rest-header node (its per-entry execution
    budget in the flow model), [None] elsewhere. *)

val flow_certificate : t -> flow_cert option
(** Construct a certificate by a per-loop lap-chain DP (Lam) followed by
    monotone Bellman sweeps (X).  Untrusted: the audit re-checks the
    conditions from scratch.  [None] if the sweeps fail to converge
    within the pass cap (the audit then falls back to the LP/ILP). *)
