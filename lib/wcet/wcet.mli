(** WCET computation: timing of classified references and the longest
    path over the VIVU-expanded DAG (the WCET scenario of Section 3.3).

    The longest path plays the role of the IPET ILP solution: on the
    expanded acyclic graph with per-node execution multiplicities the
    two coincide (property-tested against {!Ipet}).  It yields the
    per-node WCET-scenario execution counts [n_w] and the memory
    system's total contribution τ{_w} (Equation 3). *)

type t = {
  analysis : Analysis.t;
  model : Ucp_energy.Cacti.t;
  slot_cycles : int array array;
      (** per expanded node and slot: [t_w(r)], the reference's memory
          time in the WCET scenario (per single execution) *)
  node_cycles : int array;  (** per node: sum over its slots *)
  n_w : int array;  (** per node: executions in the WCET scenario *)
  on_path : bool array;
  path : int array;  (** WCET path as expanded node ids, entry first *)
  tau : int;  (** τ_w: total memory contribution to the WCET, cycles *)
}

val compute :
  ?deadline:Ucp_util.Deadline.t ->
  ?with_may:bool ->
  ?hw_next_n:int ->
  ?pinned:(int -> bool) ->
  ?policy:Ucp_policy.id ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Cacti.t ->
  t
(** Full pipeline: layout, VIVU expansion, abstract interpretation,
    timing, longest path.  [~deadline], [~with_may], [~hw_next_n],
    [~pinned] and [~policy] (replacement policy, default LRU) are
    forwarded to {!Analysis.run}. *)

val of_analysis : Analysis.t -> Ucp_energy.Cacti.t -> t
(** Timing + path on an existing analysis. *)

val longest_path : Ucp_cfg.Vivu.t -> node_cycles:int array -> int * int array
(** [(tau, path)] of the weighted longest path, where each node costs
    [node_cycles.(id) * mult id].  Exposed for alternative timing
    classifiers (e.g. locked caches). *)

val path_refs : t -> (int * int) array
(** All references along the WCET path as [(node, pos)], in execution
    order — the reverse sweep of the optimizer walks this backwards. *)

val wcet_misses : t -> int
(** Number of WCET-charged misses along the path, weighted by [n_w]. *)

val residual_prefetch_stall : t -> int
(** Conservative extra WCET cycles charged when prefetches are not
    provably effective.  Every execution of every prefetch instance is
    charged [max 0 (lambda - d)], where [d] is the minimum number of
    instruction slots between the prefetch and the first later access
    of its target block over {e all} paths of the expanded DAG (each
    slot costs at least one cycle on any execution).  Near zero for
    programs optimized by the paper's criterion (Definition 10
    guarantees effectiveness in the WCET scenario); large for naive
    baselines such as the basic-block-start inserter of [5]. *)

val tau_with_residual : t -> int
(** [tau t + residual_prefetch_stall t] — the sound bound for programs
    with unchecked prefetches. *)
