module Vivu = Ucp_cfg.Vivu
module Loops = Ucp_cfg.Loops
module Program = Ucp_isa.Program
module Layout = Ucp_isa.Layout
module Cacti = Ucp_energy.Cacti

type t = {
  analysis : Analysis.t;
  model : Cacti.t;
  slot_cycles : int array array;
  node_cycles : int array;
  n_w : int array;
  on_path : bool array;
  path : int array;
  tau : int;
}

let cycles_of model cls =
  if Classification.is_wcet_miss cls then
    model.Cacti.hit_cycles + model.Cacti.miss_penalty
  else model.Cacti.hit_cycles

(* Longest path over the DAG with per-node weights = cycles x
   multiplicity; returns the total and the path (entry first). *)
let longest_path vivu ~node_cycles =
  let n = Vivu.node_count vivu in
  let weight id = node_cycles.(id) * Vivu.mult vivu id in
  let dist = Array.make n min_int in
  let best_pred = Array.make n (-1) in
  let entry = Vivu.entry vivu in
  Array.iter
    (fun id ->
      if id = entry then dist.(id) <- weight id
      else begin
        let best = ref min_int and arg = ref (-1) in
        List.iter
          (fun p ->
            if dist.(p) > !best || (dist.(p) = !best && p < !arg) then begin
              best := dist.(p);
              arg := p
            end)
          (Vivu.dag_pred vivu id);
        if !best > min_int then begin
          dist.(id) <- !best + weight id;
          best_pred.(id) <- !arg
        end
      end)
    (Vivu.topo vivu);
  let best_exit =
    List.fold_left
      (fun acc e ->
        match acc with
        | None -> if dist.(e) > min_int then Some e else None
        | Some b -> if dist.(e) > dist.(b) then Some e else acc)
      None (Vivu.exit_nodes vivu)
  in
  let best_exit =
    match best_exit with
    | Some e -> e
    | None -> invalid_arg "Wcet.longest_path: no exit reachable from the entry"
  in
  let rec walk id acc = if id = entry then id :: acc else walk best_pred.(id) (id :: acc) in
  (dist.(best_exit), Array.of_list (walk best_exit []))

let of_analysis analysis model =
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  let n = Vivu.node_count vivu in
  let slot_cycles =
    Array.init n (fun node_id ->
        let nd = Vivu.node vivu node_id in
        let n_slots = Program.slots program nd.Vivu.block in
        Array.init n_slots (fun pos ->
            cycles_of model (Analysis.classif analysis ~node:node_id ~pos)))
  in
  let node_cycles = Array.map (Array.fold_left ( + ) 0) slot_cycles in
  let tau, path = longest_path vivu ~node_cycles in
  let on_path = Array.make n false in
  Array.iter (fun id -> on_path.(id) <- true) path;
  let n_w = Array.init n (fun id -> if on_path.(id) then Vivu.mult vivu id else 0) in
  { analysis; model; slot_cycles; node_cycles; n_w; on_path; path; tau }

let analyze ?deadline ?with_may ?hw_next_n ?pinned ?policy ?domain program config =
  let layout = Layout.make program ~block_bytes:config.Ucp_cache.Config.block_bytes in
  let vivu = Vivu.expand program in
  Analysis.run ?deadline ?with_may ?hw_next_n ?pinned ?policy ?domain vivu layout config

let compute ?deadline ?with_may ?hw_next_n ?pinned ?policy program config model =
  of_analysis (analyze ?deadline ?with_may ?hw_next_n ?pinned ?policy program config) model

let path_refs t =
  let vivu = Analysis.vivu t.analysis in
  let program = Vivu.program vivu in
  let acc = ref [] in
  Array.iter
    (fun node_id ->
      let nd = Vivu.node vivu node_id in
      for pos = 0 to Program.slots program nd.Vivu.block - 1 do
        acc := (node_id, pos) :: !acc
      done)
    t.path;
  Array.of_list (List.rev !acc)

let wcet_misses t =
  let vivu = Analysis.vivu t.analysis in
  let program = Vivu.program vivu in
  let total = ref 0 in
  Array.iter
    (fun node_id ->
      let nd = Vivu.node vivu node_id in
      let n_slots = Program.slots program nd.Vivu.block in
      for pos = 0 to n_slots - 1 do
        if Classification.is_wcet_miss (Analysis.classif t.analysis ~node:node_id ~pos)
        then total := !total + t.n_w.(node_id)
      done)
    t.path;
  !total

(* Sound residual bound: every execution of a prefetch can stall its
   first later access to the target block by at most
   Λ - (minimum number of intervening slots), because each slot costs
   at least one cycle on every execution path.  The minimum is taken
   over ALL walks of the expanded graph — DAG and iteration edges alike
   (breadth-first search on slots) — so the charge covers alternate
   paths and wrap-around uses across a loop's back edge, and it is
   weighted by the prefetch instance's full multiplicity, not just its
   WCET-path count. *)
let residual_prefetch_stall t =
  let analysis = t.analysis in
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  let lambda = t.model.Cacti.prefetch_latency in
  let slots node = Program.slots program (Vivu.node vivu node).Vivu.block in
  (* shortest slot-distance from just after (node0, pos0) to any access
     of [target]; None when no path reaches one *)
  let min_distance_to_use ~node0 ~pos0 ~target =
    (* 0/1-weighted shortest path processed in distance buckets: slot
       steps cost one, block-to-block transitions cost nothing.  Only
       distances below Λ matter (beyond that the shortfall is zero). *)
    let buckets = Array.make (lambda + 1) [] in
    buckets.(0) <- [ (node0, pos0 + 1) ];
    let visited = Hashtbl.create 64 in
    let result = ref None in
    (try
       for dist = 0 to lambda do
         let rec drain () =
           match buckets.(dist) with
           | [] -> ()
           | (node, pos) :: rest ->
             buckets.(dist) <- rest;
             if not (Hashtbl.mem visited (node, pos)) then begin
               Hashtbl.replace visited (node, pos) ();
               if pos >= slots node then begin
                 (* follow BOTH edge kinds: a loop body's first later use
                    of the target may sit across the wrap-around
                    (iteration) edge back to the rest header, which can
                    be strictly closer than any use downstream in the
                    DAG.  Ignoring iteration edges over-estimated [d]
                    and under-charged the stall (the fdct:k17/k18
                    soundness demotions). *)
                 List.iter (fun s -> buckets.(dist) <- (s, 0) :: buckets.(dist))
                   (Vivu.dag_succ vivu node);
                 List.iter (fun s -> buckets.(dist) <- (s, 0) :: buckets.(dist))
                   (Vivu.iter_succ vivu node)
               end
               else if Analysis.slot_mem_block analysis ~node ~pos = target then begin
                 result := Some dist;
                 raise Exit
               end
               else if dist < lambda then
                 buckets.(dist + 1) <- (node, pos + 1) :: buckets.(dist + 1)
             end;
             drain ()
         in
         drain ()
       done
     with Exit -> ());
    !result
  in
  let total = ref 0 in
  for node = 0 to Vivu.node_count vivu - 1 do
    if Vivu.mult vivu node > 0 then
      for pos = 0 to slots node - 1 do
        match Analysis.prefetch_target_block analysis ~node ~pos with
        | None -> ()
        | Some target -> (
          match min_distance_to_use ~node0:node ~pos0:pos ~target with
          | None -> ()
          | Some dist ->
            let shortfall = lambda - dist in
            if shortfall > 0 then total := !total + (shortfall * Vivu.mult vivu node))
      done
  done;
  !total

let tau_with_residual t = t.tau + residual_prefetch_stall t

(* ------------------------------------------------------------------ *)
(* Combinatorial flow certificate for tau (the audit fast path).

   For every expanded node v, X_v bounds the node-cycle cost of any
   walk suffix starting at v (inclusive of v); for every rest header h
   with per-entry execution budget k_h = bound - 1, Lam_h >= 0 is a
   prepaid charge per potential lap.  The VIVU execution model lets a
   walk arriving at h via a DAG edge execute h at most k_h times per
   entry: once on arrival plus at most k_h - 1 laps through an
   iteration edge.  Charging (k_h - 1) * Lam_h on the entering DAG edge
   and refunding Lam_h on each iteration edge makes the potential

     M = X_current + sum over active loop entries of remaining_laps * Lam

   non-increasing along every model-allowed step, so any certificate
   satisfying

     C0  Lam_h >= 0                          for every rest header h
     C1  X_u >= c_u + X_v + entry_charge v   for every DAG edge u->v
     C2  X_u >= c_u + X_h - Lam_h            for every iter edge u->h
     C3  X_v >= c_v                          for every node v
     C4  X_entry = tau

   (entry_charge v = (k_v - 1) * Lam_v when v is a rest header, and C1
   is waived for edges into rest headers with k_v = 0, which the model
   forbids entering at all) proves tau an upper bound on every walk —
   checkable in linear passes, no LP solve.  {!Ucp_verify} re-derives
   the per-node costs c_v from the classification and model on its own
   and checks C0-C4; this constructor is untrusted. *)

type flow_cert = {
  fc_x : int array;  (** per node: inclusive suffix bound X_v *)
  fc_lam : int array;  (** per node: lap charge Lam (0 unless rest header) *)
}

(* [Some (bound - 1)] per rest-header node, [None] elsewhere. *)
let rest_budget vivu =
  let forest = Vivu.forest vivu in
  Array.init (Vivu.node_count vivu) (fun v ->
      let nd = Vivu.node vivu v in
      match List.rev nd.Vivu.ctx with
      | (l, Vivu.Rest) :: _ when forest.Loops.loops.(l).Loops.header = nd.Vivu.block
        ->
        Some (forest.Loops.loops.(l).Loops.bound - 1)
      | _ -> None)

let flow_certificate t =
  let vivu = Analysis.vivu t.analysis in
  let n = Vivu.node_count vivu in
  let c = t.node_cycles in
  let k = rest_budget vivu in
  let lam = Array.make n 0 in
  let ctx v = (Vivu.node vivu v).Vivu.ctx in
  let rec is_prefix p l =
    match (p, l) with
    | [], _ -> true
    | x :: p', y :: l' -> x = y && is_prefix p' l'
    | _ :: _, [] -> false
  in
  let rtopo =
    let topo = Vivu.topo vivu in
    Array.init n (fun i -> topo.(n - 1 - i))
  in
  let entry_charge w = match k.(w) with Some kw -> (kw - 1) * lam.(w) | None -> 0 in
  (* Lam_h = worst-case cost of one lap (header back to itself through an
     iteration edge), by a reverse-topological chain DP over the body;
     instances are processed innermost-first so inner Lam values are
     final when an outer lap crosses an inner header's entry edge. *)
  let headers =
    List.sort
      (fun a b -> compare (List.length (ctx b)) (List.length (ctx a)))
      (List.filter (fun v -> k.(v) <> None) (List.init n Fun.id))
  in
  List.iter
    (fun h ->
      let hctx = ctx h in
      let in_body v = is_prefix hctx (ctx v) in
      let lap_src = Array.make n false in
      List.iter (fun u -> lap_src.(u) <- true) (Vivu.iter_pred vivu h);
      let lap = Array.make n None in
      Array.iter
        (fun v ->
          if in_body v then begin
            let best = ref (if lap_src.(v) then Some 0 else None) in
            List.iter
              (fun w ->
                if in_body w && k.(w) <> Some 0 then
                  match lap.(w) with
                  | None -> ()
                  | Some lw ->
                    let cand = lw + entry_charge w in
                    (match !best with
                    | None -> best := Some cand
                    | Some b -> if cand > b then best := Some cand))
              (Vivu.dag_succ vivu v);
            lap.(v) <- Option.map (fun b -> c.(v) + b) !best
          end)
        rtopo;
      lam.(h) <- (match lap.(h) with Some l when l > 0 -> l | _ -> 0))
    headers;
  (* X: least solution of C1-C3 by monotone Bellman sweeps in reverse
     topological order.  DAG candidates settle in one sweep; iteration
     edges feed back one nesting level per sweep, and converge because
     Lam_h prepays the worst lap (cycle gain <= 0).  Give up (caller
     falls back to the LP) if the cap is exceeded. *)
  let x = Array.init n (fun v -> c.(v)) in
  let changed = ref true in
  let passes = ref 0 in
  let max_passes = List.length headers + 2 in
  while !changed && !passes <= max_passes do
    changed := false;
    incr passes;
    Array.iter
      (fun v ->
        let best = ref c.(v) in
        List.iter
          (fun w ->
            if k.(w) <> Some 0 then begin
              let cand = c.(v) + x.(w) + entry_charge w in
              if cand > !best then best := cand
            end)
          (Vivu.dag_succ vivu v);
        List.iter
          (fun h ->
            let cand = c.(v) + x.(h) - lam.(h) in
            if cand > !best then best := cand)
          (Vivu.iter_succ vivu v);
        if !best > x.(v) then begin
          x.(v) <- !best;
          changed := true
        end)
      rtopo
  done;
  if !changed then None else Some { fc_x = x; fc_lam = lam }
