module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program
module Layout = Ucp_isa.Layout
module Cacti = Ucp_energy.Cacti

type t = {
  analysis : Analysis.t;
  model : Cacti.t;
  slot_cycles : int array array;
  node_cycles : int array;
  n_w : int array;
  on_path : bool array;
  path : int array;
  tau : int;
}

let cycles_of model cls =
  if Classification.is_wcet_miss cls then
    model.Cacti.hit_cycles + model.Cacti.miss_penalty
  else model.Cacti.hit_cycles

(* Longest path over the DAG with per-node weights = cycles x
   multiplicity; returns the total and the path (entry first). *)
let longest_path vivu ~node_cycles =
  let n = Vivu.node_count vivu in
  let weight id = node_cycles.(id) * Vivu.mult vivu id in
  let dist = Array.make n min_int in
  let best_pred = Array.make n (-1) in
  let entry = Vivu.entry vivu in
  Array.iter
    (fun id ->
      if id = entry then dist.(id) <- weight id
      else begin
        let best = ref min_int and arg = ref (-1) in
        List.iter
          (fun p ->
            if dist.(p) > !best || (dist.(p) = !best && p < !arg) then begin
              best := dist.(p);
              arg := p
            end)
          (Vivu.dag_pred vivu id);
        if !best > min_int then begin
          dist.(id) <- !best + weight id;
          best_pred.(id) <- !arg
        end
      end)
    (Vivu.topo vivu);
  let best_exit =
    List.fold_left
      (fun acc e ->
        match acc with
        | None -> if dist.(e) > min_int then Some e else None
        | Some b -> if dist.(e) > dist.(b) then Some e else acc)
      None (Vivu.exit_nodes vivu)
  in
  let best_exit =
    match best_exit with
    | Some e -> e
    | None -> invalid_arg "Wcet.longest_path: no exit reachable from the entry"
  in
  let rec walk id acc = if id = entry then id :: acc else walk best_pred.(id) (id :: acc) in
  (dist.(best_exit), Array.of_list (walk best_exit []))

let of_analysis analysis model =
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  let n = Vivu.node_count vivu in
  let slot_cycles =
    Array.init n (fun node_id ->
        let nd = Vivu.node vivu node_id in
        let n_slots = Program.slots program nd.Vivu.block in
        Array.init n_slots (fun pos ->
            cycles_of model (Analysis.classif analysis ~node:node_id ~pos)))
  in
  let node_cycles = Array.map (Array.fold_left ( + ) 0) slot_cycles in
  let tau, path = longest_path vivu ~node_cycles in
  let on_path = Array.make n false in
  Array.iter (fun id -> on_path.(id) <- true) path;
  let n_w = Array.init n (fun id -> if on_path.(id) then Vivu.mult vivu id else 0) in
  { analysis; model; slot_cycles; node_cycles; n_w; on_path; path; tau }

let compute ?deadline ?with_may ?hw_next_n ?pinned ?policy program config model =
  let layout = Layout.make program ~block_bytes:config.Ucp_cache.Config.block_bytes in
  let vivu = Vivu.expand program in
  let analysis =
    Analysis.run ?deadline ?with_may ?hw_next_n ?pinned ?policy vivu layout config
  in
  of_analysis analysis model

let path_refs t =
  let vivu = Analysis.vivu t.analysis in
  let program = Vivu.program vivu in
  let acc = ref [] in
  Array.iter
    (fun node_id ->
      let nd = Vivu.node vivu node_id in
      for pos = 0 to Program.slots program nd.Vivu.block - 1 do
        acc := (node_id, pos) :: !acc
      done)
    t.path;
  Array.of_list (List.rev !acc)

let wcet_misses t =
  let vivu = Analysis.vivu t.analysis in
  let program = Vivu.program vivu in
  let total = ref 0 in
  Array.iter
    (fun node_id ->
      let nd = Vivu.node vivu node_id in
      let n_slots = Program.slots program nd.Vivu.block in
      for pos = 0 to n_slots - 1 do
        if Classification.is_wcet_miss (Analysis.classif t.analysis ~node:node_id ~pos)
        then total := !total + t.n_w.(node_id)
      done)
    t.path;
  !total

(* Sound residual bound: every execution of a prefetch can stall its
   first later access to the target block by at most
   Λ - (minimum number of intervening slots), because each slot costs
   at least one cycle on every execution path.  The minimum is taken
   over ALL paths of the expanded DAG (breadth-first search on slots),
   so the charge covers alternate paths too, and it is weighted by the
   prefetch instance's full multiplicity, not just its WCET-path count. *)
let residual_prefetch_stall t =
  let analysis = t.analysis in
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  let lambda = t.model.Cacti.prefetch_latency in
  let slots node = Program.slots program (Vivu.node vivu node).Vivu.block in
  (* shortest slot-distance from just after (node0, pos0) to any access
     of [target]; None when no path reaches one *)
  let min_distance_to_use ~node0 ~pos0 ~target =
    (* 0/1-weighted shortest path processed in distance buckets: slot
       steps cost one, block-to-block transitions cost nothing.  Only
       distances below Λ matter (beyond that the shortfall is zero). *)
    let buckets = Array.make (lambda + 1) [] in
    buckets.(0) <- [ (node0, pos0 + 1) ];
    let visited = Hashtbl.create 64 in
    let result = ref None in
    (try
       for dist = 0 to lambda do
         let rec drain () =
           match buckets.(dist) with
           | [] -> ()
           | (node, pos) :: rest ->
             buckets.(dist) <- rest;
             if not (Hashtbl.mem visited (node, pos)) then begin
               Hashtbl.replace visited (node, pos) ();
               if pos >= slots node then
                 List.iter (fun s -> buckets.(dist) <- (s, 0) :: buckets.(dist))
                   (Vivu.dag_succ vivu node)
               else if Analysis.slot_mem_block analysis ~node ~pos = target then begin
                 result := Some dist;
                 raise Exit
               end
               else if dist < lambda then
                 buckets.(dist + 1) <- (node, pos + 1) :: buckets.(dist + 1)
             end;
             drain ()
         in
         drain ()
       done
     with Exit -> ());
    !result
  in
  let total = ref 0 in
  for node = 0 to Vivu.node_count vivu - 1 do
    if Vivu.mult vivu node > 0 then
      for pos = 0 to slots node - 1 do
        match Analysis.prefetch_target_block analysis ~node ~pos with
        | None -> ()
        | Some target -> (
          match min_distance_to_use ~node0:node ~pos0:pos ~target with
          | None -> ()
          | Some dist ->
            let shortfall = lambda - dist in
            if shortfall > 0 then total := !total + (shortfall * Vivu.mult vivu node))
      done
  done;
  !total

let tau_with_residual t = t.tau + residual_prefetch_stall t
