(** Cache-aware abstract interpretation over the VIVU-expanded graph.

    Runs the must and may analyses to a sound fixpoint (iteration edges
    of rest contexts included) and classifies every instruction slot of
    every expanded node.  Prefetch instructions apply the
    prefetch-extended abstract semantics: their own fetch is classified
    like any reference, and the targeted memory block is installed as
    most-recently-used. *)

type t

type domain = Flat | Functional
(** Representation of the abstract cache states the fixpoint runs on:
    packed cacheaudit-style age vectors ([Flat], the default) or the
    per-set functional association lists ([Functional], the reference
    semantics the flat domains are qcheck-tested against).  Same
    classifications either way. *)

val run :
  ?deadline:Ucp_util.Deadline.t ->
  ?with_may:bool ->
  ?hw_next_n:int ->
  ?pinned:(int -> bool) ->
  ?policy:Ucp_policy.id ->
  ?domain:domain ->
  Ucp_cfg.Vivu.t ->
  Ucp_isa.Layout.t ->
  Ucp_cache.Config.t ->
  t
(** Run both analyses.  [~with_may:false] skips the may analysis, in
    which case unclassified references are reported [Not_classified]
    rather than [Always_miss] — the WCET bound is unchanged (both are
    charged as misses), and the optimizer's inner loop uses this to
    halve the fixpoint cost.

    [~policy] selects the replacement policy whose abstract domains are
    run (default LRU, bit-identical to the seed's analyses; see
    {!Ucp_policy}).  A policy whose must domain needs definite-miss
    information ({!Ucp_policy.needs_may}, i.e. FIFO) forces the may
    analysis on even under [~with_may:false]; always-miss
    classifications may then appear where the caller expected
    [Not_classified] — the WCET bound treats the two identically.

    [~hw_next_n:n] enables the next-N-line-always hardware prefetcher
    in the abstract semantics (the extension of the classical update
    the paper cites as [22]): every demand reference additionally
    installs the [n] sequentially following memory blocks.

    [~pinned] marks memory blocks held in locked ways (the hybrid
    locking+prefetching schemes [16, 2] of the paper's perspectives):
    pinned references are always-hits and never enter the replacement
    state — pass the configuration of the {e unlocked} ways.
    @raise Invalid_argument if a prefetch instruction targets a uid
    absent from the program.
    @raise Ucp_util.Deadline.Deadline_exceeded if [?deadline] passes
    (checked once per fixpoint pass). *)

val vivu : t -> Ucp_cfg.Vivu.t
val layout : t -> Ucp_isa.Layout.t
val config : t -> Ucp_cache.Config.t

val policy : t -> Ucp_policy.id
(** The replacement policy the analysis modelled. *)

val is_plain : t -> bool
(** Whether the analysis ran without [~pinned] ways and without a
    hardware prefetcher ([hw_next_n = 0]) — the only modes the
    witness-replay audit supports.  Non-plain analyses get an explicit
    [Skipped] audit verdict instead of a silent pass. *)

val classif : t -> node:int -> pos:int -> Classification.t
(** Classification of an instruction slot of an expanded node. *)

val in_must : t -> int -> Ucp_cache.Abstract.t
(** Sound must state on entry to a node (join over all predecessors). *)

val in_may : t -> int -> Ucp_cache.Abstract.t

val slot_mem_block : t -> node:int -> pos:int -> int
(** [S(r)]: memory block fetched by the slot (the slot's own address). *)

val prefetch_target_block : t -> node:int -> pos:int -> int option
(** For a prefetch slot, the memory block it loads. *)

val miss_count_bound : t -> int
(** Σ over expanded nodes of [mult x] WCET-charged misses — the
    analysis' upper bound on demand misses (used by Condition 2). *)

val override_classif : t -> (int * int * Classification.t) list -> t
(** [override_classif t [(node, pos, cls); ...]] is a copy of [t] with
    the listed slots reclassified — the feedback edge the exact
    classification refinement ([Ucp_refine]) uses to tighten the flow
    facts the IPET ILP sees.  [t] itself is untouched.  The caller
    vouches for the soundness of every override (the certification
    audit re-derives and cross-checks them). *)

val classification_counts : t -> int * int * int
(** [(ah, am, nc)]: how many instruction slots of the expanded graph
    were classified always-hit / always-miss / not-classified
    (unweighted by context multiplicity) — the per-policy
    classification-precision counters reported by the sweep. *)

val fixpoint_passes : t -> int
(** Number of sweeps the fixpoint needed (diagnostics). *)
