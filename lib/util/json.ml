type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { pos; msg } ->
      Some (Printf.sprintf "Json.Parse_error at byte %d: %s" pos msg)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* parsing: a strict recursive-descent reader over the whole string —
   no trailing garbage, no unquoted keys, no comments, no bare NaN *)

type cursor = { src : string; mutable pos : int }

let error c fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { pos = c.pos; msg })) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c "expected %C, found %C" ch x
  | None -> error c "expected %C, found end of input" ch

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let parse_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c "invalid literal (expected %s)" word

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> error c "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
          let hex = String.sub c.src c.pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some v -> v
            | None -> error c "bad \\u escape %S" hex
          in
          c.pos <- c.pos + 4;
          (* encode the code point as UTF-8; surrogates are kept as-is
             bytes of their code unit, which round-trips our own writer *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | ch -> error c "invalid escape \\%C" ch);
        go ())
    | Some ch when Char.code ch < 0x20 -> error c "raw control byte in string"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let accept pred =
    match peek c with Some ch when pred ch -> advance c; true | _ -> false
  in
  let is_digit ch = ch >= '0' && ch <= '9' in
  ignore (accept (fun ch -> ch = '-'));
  if not (accept is_digit) then error c "malformed number";
  while accept is_digit do () done;
  if accept (fun ch -> ch = '.') then begin
    if not (accept is_digit) then error c "malformed number (no digit after '.')";
    while accept is_digit do () done
  end;
  if accept (fun ch -> ch = 'e' || ch = 'E') then begin
    ignore (accept (fun ch -> ch = '+' || ch = '-'));
    if not (accept is_digit) then error c "malformed number (empty exponent)";
    while accept is_digit do () done
  end;
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with
  | Some v -> Num v
  | None -> error c "malformed number %S" text

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> error c "expected ',' or '}' in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']' in array"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c "unexpected character %C" ch

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length src then
      Error (Printf.sprintf "byte %d: trailing garbage after JSON value" c.pos)
    else Ok v
  | exception Parse_error { pos; msg } -> Error (Printf.sprintf "byte %d: %s" pos msg)

let parse_exn src =
  match parse src with
  | Ok v -> v
  | Error msg -> raise (Parse_error { pos = 0; msg })

(* ------------------------------------------------------------------ *)
(* printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number_to_string v)
  | Str s -> escape_string buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* accessors *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
