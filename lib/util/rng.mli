(** Deterministic pseudo-random number generation.

    A small SplitMix64 generator.  Every stochastic choice in the
    repository (branch outcomes, workload shapes, property-test seeds
    outside qcheck) goes through this module so that runs are
    bit-reproducible across machines and OCaml versions. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a seed.  Equal seeds yield
    equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)] by rejection
    sampling over the generator's 62-bit output, so every value is
    exactly equally likely (no modulo bias).  Consumes one [next_int64]
    per draw plus one per (rare) rejection.
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val split : t -> t
(** [split t] derives a generator whose stream is independent of the
    continued stream of [t]; both remain usable. *)
