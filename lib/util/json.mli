(** A minimal, strict JSON reader/writer for the observability layer
    (Chrome [trace_event] files, sweep JSONL lines) and its tests.

    The parser is deliberately strict: it rejects trailing garbage,
    comments, unquoted keys, raw control bytes inside strings and
    malformed numbers, so a "well-formed trace" check through {!parse}
    means the file really is standard JSON.  Numbers are held as
    [float], like JavaScript — integers round-trip exactly up to
    2{^53}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }

val parse : string -> (t, string) result
(** Parse one complete JSON value covering the whole input (leading and
    trailing whitespace allowed, nothing else). *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val to_string : t -> string
(** Compact (no-whitespace) rendering; [parse (to_string v) = Ok v] up
    to float formatting. *)

(** {2 Accessors} — all total, returning [None] on a shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an object. *)

val to_float : t -> float option
val to_int : t -> int option
(** Only for numbers with integral value. *)

val to_str : t -> string option
val to_list : t -> t list option
