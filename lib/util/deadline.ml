type t = float (* absolute Unix.gettimeofday target *)

exception Deadline_exceeded

let after secs =
  if not (secs > 0.0 && Float.is_finite secs) then
    invalid_arg "Deadline.after: seconds must be positive and finite";
  Unix.gettimeofday () +. secs

let expired d = Unix.gettimeofday () > d

let check = function
  | None -> ()
  | Some d -> if expired d then raise Deadline_exceeded

let remaining d = d -. Unix.gettimeofday ()
