(* Bounded LRU map: a hashtable over the nodes of a doubly-linked
   recency list (most-recent at the front), after the cachecache
   exemplar named in the ROADMAP.  Every operation is O(1) except
   [to_list]/[fold].  Not thread-safe — callers serialize. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards the MRU end *)
  mutable next : ('k, 'v) node option;  (* towards the LRU end *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable mru : ('k, 'v) node option;
  mutable lru : ('k, 'v) node option;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be non-negative";
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    mru = None;
    lru = None;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let evictions t = t.evictions

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let promote t n =
  unlink t n;
  push_front t n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.value

let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table k)
let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table k

let add t k v =
  if t.capacity = 0 then ()
  else
    match Hashtbl.find_opt t.table k with
    | Some n ->
      n.value <- v;
      promote t n
    | None ->
      if Hashtbl.length t.table >= t.capacity then begin
        match t.lru with
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.key;
          t.evictions <- t.evictions + 1
        | None -> ()
      end;
      let n = { key = k; value = v; prev = None; next = None } in
      push_front t n;
      Hashtbl.add t.table k n

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.mru

let fold f t acc = List.fold_left (fun acc (k, v) -> f k v acc) acc (to_list t)

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None
