(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), table-driven.
   Computed in a native int and masked to 32 bits, so no int32 boxing
   on the per-byte hot path. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask = 0xFFFFFFFF

let update crc s =
  let t = Lazy.force table in
  let crc = ref (crc lxor mask) in
  String.iter
    (fun ch -> crc := t.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  (!crc lxor mask) land mask

let string s = update 0 s
let to_hex c = Printf.sprintf "%08x" (c land mask)
