(** Bounded least-recently-used map.

    A hashtable indexes the nodes of a doubly-linked recency list, so
    lookup, insert, promote and evict are all O(1) (the intrusive-list
    layout of the CraigFe/cachecache exemplar).  {!find} and {!add}
    promote their key to most-recently-used; inserting into a full map
    silently evicts the least-recently-used entry.

    Not thread-safe: callers that share a map across domains or threads
    must serialize access themselves (the serve daemon keeps its result
    cache under one mutex). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** An empty map holding at most [capacity] entries.  [capacity = 0] is
    a valid degenerate map on which {!add} is a no-op — a disabled
    cache, everything misses.
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Entries evicted by capacity pressure since {!create}. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit promotes the key to most-recently-used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup {e without} promoting — recency order is unchanged. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without promoting. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, promoting the key to most-recently-used; a new
    key on a full map first evicts the least-recently-used entry. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Remove if present. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries in recency order, most-recently-used first — the order the
    qcheck model validates. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Fold in recency order (MRU first). *)

val clear : ('k, 'v) t -> unit
