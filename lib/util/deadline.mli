(** Cooperative per-task deadlines.

    A deadline is an absolute point in wall-clock time.  Long-running
    iteration loops (the simplex pivot loop, the abstract-interpretation
    fixpoint, the optimizer's verify rounds) accept an optional deadline
    and call {!check} periodically; once the deadline has passed the
    next check raises {!Deadline_exceeded}, which the sweep engine maps
    to a [Timed_out] outcome for the offending use case.

    Checks are cooperative: code that never calls {!check} (e.g. the
    trace simulator's inner loop) cannot be interrupted.  The analysis,
    LP and optimizer loops — the phases that can blow up
    combinatorially — all check. *)

type t
(** An absolute deadline. *)

exception Deadline_exceeded
(** Raised by {!check} once the deadline has passed. *)

val after : float -> t
(** [after secs] is the deadline [secs] seconds from now.
    @raise Invalid_argument if [secs] is not positive and finite. *)

val expired : t -> bool
(** Has the deadline passed?  Never raises. *)

val check : t option -> unit
(** [check (Some d)] raises {!Deadline_exceeded} iff [d] has passed;
    [check None] is free.  Cost: one clock read when armed. *)

val remaining : t -> float
(** Seconds until the deadline (negative once passed). *)
