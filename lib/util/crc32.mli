(** CRC-32 (the IEEE 802.3 / zlib polynomial, reflected).

    Used by the serve result store to detect torn or corrupted on-disk
    entries — a checksum mismatch quarantines the entry instead of
    serving garbage.  Values are 32-bit and carried in a native [int]. *)

val string : string -> int
(** CRC-32 of a whole string.  [string "123456789" = 0xCBF43926]. *)

val update : int -> string -> int
(** Continue a running checksum: [update (string a) b = string (a ^ b)]. *)

val to_hex : int -> string
(** Fixed-width lowercase hex (8 digits) — the store's on-disk form. *)
