(* Exponential backoff with decorrelated jitter (Brooker's variant):
   each delay is drawn uniformly from [base, 3 * previous), capped.
   All randomness comes from a caller-supplied Rng, so a retry schedule
   is a pure function of the seed — tests replay it exactly. *)

type t = {
  base : float;
  cap : float;
  rng : Rng.t;
  mutable prev : float;
  mutable attempts : int;
}

let create ?(base = 0.05) ?(cap = 5.0) rng =
  if (not (Float.is_finite base)) || base <= 0.0 then
    invalid_arg "Backoff.create: base must be positive";
  if (not (Float.is_finite cap)) || cap < base then
    invalid_arg "Backoff.create: cap must be >= base";
  { base; cap; rng; prev = base; attempts = 0 }

let next t =
  let hi = 3.0 *. t.prev in
  let span = hi -. t.base in
  let d = if span > 0.0 then Rng.float t.rng span else 0.0 in
  let delay = Float.min t.cap (t.base +. d) in
  t.prev <- delay;
  t.attempts <- t.attempts + 1;
  delay

let attempts t = t.attempts

let reset t =
  t.prev <- t.base;
  t.attempts <- 0
