type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the 62-bit draw (kept to 62 bits so the
     value fits OCaml's 63-bit nonnegative range, i.e. r is uniform in
     [0, 2^62)).  A plain [r mod bound] over-weights the low residues
     whenever bound does not divide 2^62; instead, redraw whenever r
     falls in the short tail above the largest multiple of bound.  2^62
     itself is not representable (max_int = 2^62 - 1), hence the split
     computation of [2^62 mod bound].  For bounds far below 2^62 the
     tail is hit with probability < bound / 2^62, so seeded streams
     only diverge from the old biased ones where a redraw occurs. *)
  let tail = ((max_int mod bound) + 1) mod bound in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    if tail <> 0 && r >= max_int - tail + 1 then draw () else r mod bound
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let split t =
  let seed = next_int64 t in
  { state = mix seed }
