(** Descriptive statistics over float samples.

    Used by the experiment driver to aggregate per-use-case ratios into
    the averages the paper plots (Figures 3, 4, 5, 7, 8). *)

val mean : float list -> float
(** Arithmetic mean.  [nan] on the empty list. *)

val geomean : float list -> float
(** Geometric mean, appropriate for ratios.  [nan] on the empty list.
    @raise Invalid_argument if any sample is not positive. *)

val stddev : float list -> float
(** {e Population} standard deviation (divides by [n], not [n - 1]).
    This is a deliberate choice: the sweep aggregations describe the
    dispersion of the complete set of use cases, not of a sample drawn
    from a larger population.  Callers that need the sample (Bessel
    corrected) deviation must apply [sqrt (n /. (n - 1))] themselves.
    [0.0] on a singleton list, [nan] on the empty list. *)

val minimum : float list -> float
(** Smallest sample.  [nan] on the empty list. *)

val maximum : float list -> float
(** Largest sample.  [nan] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,100\]], {e nearest-rank} on the
    sorted samples: the result is always one of the samples, with no
    interpolation between adjacent ranks (the rank is
    [ceil (p/100 * n)], clamped to [\[1, n\]]).  In particular
    [percentile 0.0] and any [p] small enough that the rank rounds to 1
    return the minimum, [percentile 100.0] returns the maximum, and on
    a singleton list every [p] returns that sample.  The even-length
    median is the lower of the two middle samples, not their mean.
    [nan] on the empty list. *)

val fraction_below : float -> float list -> float
(** [fraction_below x xs] is the share of samples strictly below [x]. *)

type summary = {
  n : int;
  mean : float;
  geomean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}
(** One-shot descriptive summary. *)

val summarize : float list -> summary
(** Compute all fields of {!summary} in one pass over the sorted data. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render a summary on one line. *)
