(** Exponential backoff with decorrelated jitter.

    Each call to {!next} draws the following delay uniformly from
    [\[base, 3 × previous)], capped at [cap] — the "decorrelated
    jitter" schedule, which spreads retrying clients apart instead of
    letting them synchronize into retry storms.  All randomness comes
    from the supplied {!Rng.t}, so the whole schedule is deterministic
    in the seed: the serve client's retry timing is replayable and the
    tests pin the exact sequence. *)

type t

val create : ?base:float -> ?cap:float -> Rng.t -> t
(** [create rng] with [?base] (default 0.05 s, the first delay's lower
    bound) and [?cap] (default 5 s, the largest delay ever returned).
    @raise Invalid_argument unless [0 < base <= cap] (finite). *)

val next : t -> float
(** The next delay in seconds: uniform in [\[base, 3 × previous)],
    capped at [cap].  Always within [\[base, cap\]]. *)

val attempts : t -> int
(** Number of {!next} calls since {!create}/{!reset}. *)

val reset : t -> unit
(** Forget the history: the next delay is drawn as if freshly created
    (the generator's stream is {e not} rewound). *)
