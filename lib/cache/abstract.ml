type kind = Ucp_policy.kind = Must | May

(* Two interchangeable representations of the same domains:

   - [Functional]: per set, an association list (memory block, age
     bound) sorted by block id.  Ages range over [0, assoc); entries
     reaching [assoc] are evicted from the abstract state.  Retained as
     the executable reference semantics (qcheck-tested against).
   - [Flat]: cacheaudit-style packed age vector — one int array over
     the memory-block universe, [ages.(mb - base)] the block's age
     bound with absence encoded as the saturation value
     [Ucp_policy.flat_cap].  [base] makes the indexing dense: code
     memory blocks sit near the layout's anchor address (ids around
     2{^20}), so the vector covers only the program's own id range, not
     the whole address space.  [members.(s)] lists the universe
     {e offsets} mapping to cache set [s] (shared, immutable).  Joins
     and the domain order become pointwise max/min and comparisons;
     updates copy one small int array instead of rebuilding association
     lists.

   The per-set transfer functions live in Ucp_policy and are dispatched
   through the policy's first-class module; for functional LRU they are
   byte-identical to the seed's formulas. *)
type repr =
  | Functional of Ucp_policy.aset array
  | Flat of { base : int; ages : int array; members : int array array }

type t = {
  config : Config.t;
  kind : kind;
  policy : Ucp_policy.id;
  pol : (module Ucp_policy.POLICY);
  repr : repr;
}

let empty ?(policy = Ucp_policy.Lru) config kind =
  Ucp_policy.check_assoc policy ~assoc:config.Config.assoc;
  {
    config;
    kind;
    policy;
    pol = Ucp_policy.find policy;
    repr = Functional (Array.make config.Config.sets []);
  }

let empty_flat ?(policy = Ucp_policy.Lru) ~base ~universe config kind =
  Ucp_policy.check_assoc policy ~assoc:config.Config.assoc;
  if universe < 1 then invalid_arg "Abstract.empty_flat: empty universe";
  let pol = Ucp_policy.find policy in
  let module P = (val pol : Ucp_policy.POLICY) in
  let cap = P.flat_cap kind ~assoc:config.Config.assoc in
  let member_lists = Array.make config.Config.sets [] in
  (* set membership follows the *raw* block id (the hardware indexes on
     addresses); the stored member entries are universe offsets because
     that is what the fset transfers index [ages] with *)
  for idx = universe - 1 downto 0 do
    let s = Config.set_of_mem_block config (base + idx) in
    member_lists.(s) <- idx :: member_lists.(s)
  done;
  {
    config;
    kind;
    policy;
    pol;
    repr =
      Flat
        {
          base;
          ages = Array.make universe cap;
          members = Array.map Array.of_list member_lists;
        };
  }

let kind t = t.kind
let config t = t.config
let policy t = t.policy
let is_flat t = match t.repr with Flat _ -> true | Functional _ -> false

let set_idx t mb = Config.set_of_mem_block t.config mb

let cap_of t =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  P.flat_cap t.kind ~assoc:t.config.Config.assoc

(* offset of a raw block id into the packed vector *)
let flat_idx ~base ages mb =
  let idx = mb - base in
  if idx < 0 || idx >= Array.length ages then
    invalid_arg
      (Printf.sprintf "Abstract: memory block %d outside the flat universe [%d,%d)"
         mb base
         (base + Array.length ages));
  idx

let apply op ?(hint = Ucp_policy.Unknown) t mb =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  match t.repr with
  | Functional sets ->
    let f = match op with `Update -> P.aset_update | `Fill -> P.aset_fill in
    let s = set_idx t mb in
    let sets = Array.copy sets in
    sets.(s) <- f t.kind ~assoc:t.config.Config.assoc ~hint sets.(s) mb;
    { t with repr = Functional sets }
  | Flat f ->
    let idx = flat_idx ~base:f.base f.ages mb in
    let g = match op with `Update -> P.fset_update | `Fill -> P.fset_fill in
    let ages = Array.copy f.ages in
    g t.kind ~assoc:t.config.Config.assoc ~hint ~ages
      ~members:f.members.(set_idx t mb) idx;
    { t with repr = Flat { f with ages } }

let update ?hint t mb = apply `Update ?hint t mb
let fill ?hint t mb = apply `Fill ?hint t mb

(* Destructive variants for the analysis hot loop: [copy] takes the one
   defensive copy, then [update_ip]/[fill_ip] mutate it through a whole
   node transfer — one allocation per node instead of one per
   instruction slot. *)
let copy t =
  match t.repr with
  | Functional sets -> { t with repr = Functional (Array.copy sets) }
  | Flat f -> { t with repr = Flat { f with ages = Array.copy f.ages } }

let apply_ip op ?(hint = Ucp_policy.Unknown) t mb =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  match t.repr with
  | Functional sets ->
    let f = match op with `Update -> P.aset_update | `Fill -> P.aset_fill in
    let s = set_idx t mb in
    sets.(s) <- f t.kind ~assoc:t.config.Config.assoc ~hint sets.(s) mb
  | Flat f ->
    let idx = flat_idx ~base:f.base f.ages mb in
    let g = match op with `Update -> P.fset_update | `Fill -> P.fset_fill in
    g t.kind ~assoc:t.config.Config.assoc ~hint ~ages:f.ages
      ~members:f.members.(set_idx t mb) idx

let update_ip ?hint t mb = apply_ip `Update ?hint t mb
let fill_ip ?hint t mb = apply_ip `Fill ?hint t mb

let check_compatible op a b =
  if a.kind <> b.kind then invalid_arg (Printf.sprintf "Abstract.%s: kind mismatch" op);
  if not (Config.equal a.config b.config) then
    invalid_arg (Printf.sprintf "Abstract.%s: configuration mismatch" op);
  if a.policy <> b.policy then
    invalid_arg (Printf.sprintf "Abstract.%s: policy mismatch" op)

let repr_mismatch op =
  invalid_arg (Printf.sprintf "Abstract.%s: mixed flat/functional representations" op)

let join a b =
  check_compatible "join" a b;
  let module P = (val a.pol : Ucp_policy.POLICY) in
  match (a.repr, b.repr) with
  | Functional sa, Functional sb ->
    let join_set ea eb = P.aset_join a.kind ea eb |> List.sort compare in
    {
      a with
      repr = Functional (Array.init (Array.length sa) (fun i -> join_set sa.(i) sb.(i)));
    }
  | Flat fa, Flat fb ->
    if Array.length fa.ages <> Array.length fb.ages || fa.base <> fb.base then
      invalid_arg "Abstract.join: flat universe mismatch";
    (* must: intersection with maximal age bounds; may: union with
       minimal bounds — both pointwise thanks to the saturation
       encoding of absence *)
    let merge = match a.kind with Must -> max | May -> min in
    let ages = Array.init (Array.length fa.ages) (fun i -> merge fa.ages.(i) fb.ages.(i)) in
    { a with repr = Flat { fa with ages } }
  | Functional _, Flat _ | Flat _, Functional _ -> repr_mismatch "join"

let leq a b =
  check_compatible "leq" a b;
  let module P = (val a.pol : Ucp_policy.POLICY) in
  match (a.repr, b.repr) with
  | Functional sa, Functional sb ->
    let n = Array.length sa in
    let rec go i = i >= n || (P.aset_leq a.kind sa.(i) sb.(i) && go (i + 1)) in
    go 0
  | Flat fa, Flat fb ->
    if Array.length fa.ages <> Array.length fb.ages || fa.base <> fb.base then
      invalid_arg "Abstract.leq: flat universe mismatch";
    let n = Array.length fa.ages in
    let ok i =
      match a.kind with Must -> fa.ages.(i) <= fb.ages.(i) | May -> fb.ages.(i) <= fa.ages.(i)
    in
    let rec go i = i >= n || (ok i && go (i + 1)) in
    go 0
  | Functional _, Flat _ | Flat _, Functional _ -> repr_mismatch "leq"

let contains t mb =
  match t.repr with
  | Functional sets -> List.mem_assoc mb sets.(set_idx t mb)
  | Flat f ->
    let idx = flat_idx ~base:f.base f.ages mb in
    f.ages.(idx) < cap_of t

let age t mb =
  match t.repr with
  | Functional sets -> List.assoc_opt mb sets.(set_idx t mb)
  | Flat f ->
    let idx = flat_idx ~base:f.base f.ages mb in
    if f.ages.(idx) < cap_of t then Some f.ages.(idx) else None

let blocks t =
  match t.repr with
  | Functional sets ->
    Array.to_list sets |> List.concat |> List.map fst |> List.sort compare
  | Flat f ->
    let cap = cap_of t in
    let acc = ref [] in
    for idx = Array.length f.ages - 1 downto 0 do
      if f.ages.(idx) < cap then acc := (f.base + idx) :: !acc
    done;
    !acc

let victims ?(hint = Ucp_policy.Unknown) t mb =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  match t.repr with
  | Functional sets ->
    let before = sets.(set_idx t mb) in
    let after = P.aset_update t.kind ~assoc:t.config.Config.assoc ~hint before mb in
    List.filter_map
      (fun (x, _) -> if x <> mb && not (List.mem_assoc x after) then Some x else None)
      before
  | Flat f ->
    let idx = flat_idx ~base:f.base f.ages mb in
    let cap = cap_of t in
    let ages = Array.copy f.ages in
    let members = f.members.(set_idx t mb) in
    P.fset_update t.kind ~assoc:t.config.Config.assoc ~hint ~ages ~members idx;
    Array.to_list members
    |> List.filter (fun x -> x <> idx && f.ages.(x) < cap && ages.(x) >= cap)
    |> List.map (fun x -> f.base + x)

let equal a b =
  a.kind = b.kind && a.policy = b.policy
  && Config.equal a.config b.config
  &&
  match (a.repr, b.repr) with
  | Functional sa, Functional sb -> sa = sb
  | Flat fa, Flat fb -> fa.base = fb.base && fa.ages = fb.ages
  | Functional _, Flat _ | Flat _, Functional _ -> repr_mismatch "equal"

let pp ppf t =
  Format.fprintf ppf "@[<v>%s cache (%s):@,"
    (match t.kind with Must -> "must" | May -> "may")
    (Ucp_policy.to_string t.policy);
  let pp_set i entries =
    if entries <> [] then begin
      Format.fprintf ppf "  set %d:" i;
      List.iter (fun (mb, a) -> Format.fprintf ppf " s%d@%d" mb a) entries;
      Format.pp_print_cut ppf ()
    end
  in
  (match t.repr with
  | Functional sets -> Array.iteri pp_set sets
  | Flat f ->
    let cap = cap_of t in
    Array.iteri
      (fun i members ->
        pp_set i
          (Array.to_list members
          |> List.filter_map (fun idx ->
                 if f.ages.(idx) < cap then Some (f.base + idx, f.ages.(idx))
                 else None)))
      f.members);
  Format.fprintf ppf "@]"
