type kind = Ucp_policy.kind = Must | May

(* Per set: association list (memory block, age bound), sorted by block
   id.  Ages range over [0, assoc); entries reaching [assoc] are evicted
   from the abstract state.  The per-set transfer functions live in
   Ucp_policy and are dispatched through the policy's first-class
   module; for LRU they are byte-identical to the seed's formulas. *)
type t = {
  config : Config.t;
  kind : kind;
  policy : Ucp_policy.id;
  pol : (module Ucp_policy.POLICY);
  sets : Ucp_policy.aset array;
}

let empty ?(policy = Ucp_policy.Lru) config kind =
  Ucp_policy.check_assoc policy ~assoc:config.Config.assoc;
  {
    config;
    kind;
    policy;
    pol = Ucp_policy.find policy;
    sets = Array.make config.Config.sets [];
  }

let kind t = t.kind
let config t = t.config
let policy t = t.policy

let set_idx t mb = Config.set_of_mem_block t.config mb

let apply op ?(hint = Ucp_policy.Unknown) t mb =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  let f = match op with `Update -> P.aset_update | `Fill -> P.aset_fill in
  let s = set_idx t mb in
  let sets = Array.copy t.sets in
  sets.(s) <- f t.kind ~assoc:t.config.Config.assoc ~hint sets.(s) mb;
  { t with sets }

let update ?hint t mb = apply `Update ?hint t mb
let fill ?hint t mb = apply `Fill ?hint t mb

let join a b =
  if a.kind <> b.kind then invalid_arg "Abstract.join: kind mismatch";
  if not (Config.equal a.config b.config) then
    invalid_arg "Abstract.join: configuration mismatch";
  if a.policy <> b.policy then invalid_arg "Abstract.join: policy mismatch";
  let module P = (val a.pol : Ucp_policy.POLICY) in
  let join_set ea eb = P.aset_join a.kind ea eb |> List.sort compare in
  { a with sets = Array.init (Array.length a.sets) (fun i -> join_set a.sets.(i) b.sets.(i)) }

let leq a b =
  if a.kind <> b.kind then invalid_arg "Abstract.leq: kind mismatch";
  if not (Config.equal a.config b.config) then
    invalid_arg "Abstract.leq: configuration mismatch";
  if a.policy <> b.policy then invalid_arg "Abstract.leq: policy mismatch";
  let module P = (val a.pol : Ucp_policy.POLICY) in
  let n = Array.length a.sets in
  let rec go i = i >= n || (P.aset_leq a.kind a.sets.(i) b.sets.(i) && go (i + 1)) in
  go 0

let contains t mb = List.mem_assoc mb t.sets.(set_idx t mb)

let age t mb = List.assoc_opt mb t.sets.(set_idx t mb)

let blocks t =
  Array.to_list t.sets |> List.concat |> List.map fst |> List.sort compare

let victims ?(hint = Ucp_policy.Unknown) t mb =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  let before = t.sets.(set_idx t mb) in
  let after = P.aset_update t.kind ~assoc:t.config.Config.assoc ~hint before mb in
  List.filter_map
    (fun (x, _) -> if x <> mb && not (List.mem_assoc x after) then Some x else None)
    before

let equal a b =
  a.kind = b.kind && a.policy = b.policy && Config.equal a.config b.config
  && a.sets = b.sets

let pp ppf t =
  Format.fprintf ppf "@[<v>%s cache (%s):@,"
    (match t.kind with Must -> "must" | May -> "may")
    (Ucp_policy.to_string t.policy);
  Array.iteri
    (fun i entries ->
      if entries <> [] then begin
        Format.fprintf ppf "  set %d:" i;
        List.iter (fun (mb, a) -> Format.fprintf ppf " s%d@%d" mb a) entries;
        Format.pp_print_cut ppf ()
      end)
    t.sets;
  Format.fprintf ppf "@]"
