type policy = Ucp_policy.id = Lru | Fifo | Plru

type t = {
  config : Config.t;
  policy : policy;
  pol : (module Ucp_policy.POLICY);
  sets : Ucp_policy.cset array;
  (* per set: policy-specific state (recency/insertion queue for
     LRU/FIFO, way array + tree bits for PLRU) *)
}

type outcome =
  | Hit
  | Miss of int option

let create ?(policy = Lru) config =
  Ucp_policy.check_assoc policy ~assoc:config.Config.assoc;
  let pol = Ucp_policy.find policy in
  let module P = (val pol : Ucp_policy.POLICY) in
  {
    config;
    policy;
    pol;
    sets = Array.init config.Config.sets (fun _ -> P.cset_empty ~assoc:config.Config.assoc);
  }

let policy t = t.policy

let copy t =
  { t with sets = Array.map Ucp_policy.cset_copy t.sets }

let set_idx t mb = Config.set_of_mem_block t.config mb

let access t mb =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  let s = set_idx t mb in
  let cs', hit, victim = P.cset_access ~assoc:t.config.Config.assoc t.sets.(s) mb in
  t.sets.(s) <- cs';
  if hit then Hit else Miss victim

let fill t mb =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  let s = set_idx t mb in
  let cs', victim = P.cset_fill ~assoc:t.config.Config.assoc t.sets.(s) mb in
  t.sets.(s) <- cs';
  victim

let contains t mb = Ucp_policy.cset_contains t.sets.(set_idx t mb) mb

let age t mb =
  let module P = (val t.pol : Ucp_policy.POLICY) in
  P.cset_age ~assoc:t.config.Config.assoc t.sets.(set_idx t mb) mb

let contents t =
  Array.to_list t.sets
  |> List.concat_map Ucp_policy.cset_blocks
  |> List.sort compare

let resident_in_set t s = Ucp_policy.cset_blocks t.sets.(s)

let config t = t.config
