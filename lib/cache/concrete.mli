(** Concrete set-associative cache (Section 3.1's [c : L -> S]).

    Mutable; used by the trace simulator and as the ground truth against
    which the abstract domains are property-tested.  The replacement
    policy defaults to LRU (the paper's platform); FIFO and tree-based
    PLRU are first-class citizens of the {!Ucp_policy} subsystem, and
    each policy has matching sound abstract must/may domains in
    {!Abstract} — the analyses are policy-parametric, not LRU-only. *)

type t

type policy = Ucp_policy.id = Lru | Fifo | Plru
(** Re-export of {!Ucp_policy.id} so existing callers can keep writing
    [Concrete.Lru] etc. *)

type outcome =
  | Hit
  | Miss of int option
      (** the block brought in caused the eviction of the given block,
          if the set was full *)

val create : ?policy:policy -> Config.t -> t
(** Empty (all-invalid) cache.
    @raise Invalid_argument if the policy rejects the configuration's
    associativity (PLRU requires a power of two). *)

val policy : t -> policy

val copy : t -> t

val access : t -> int -> outcome
(** [access t mb] references memory block [mb]: a hit updates the
    replacement state per the policy (LRU: block becomes most recently
    used; FIFO: position unchanged; PLRU: tree bits point away from the
    block); a miss inserts it, evicting the policy's victim when the
    set is full (PLRU fills invalid ways first). *)

val fill : t -> int -> int option
(** [fill t mb] inserts [mb] without counting as a demand access (a
    completed prefetch); returns the evicted block, if any.  Filling a
    resident block refreshes the replacement state exactly like a hit
    (a no-op under FIFO). *)

val contains : t -> int -> bool
(** Is the memory block currently cached? *)

val age : t -> int -> int option
(** Replacement age of a cached block within its set; 0 = most recently
    used (LRU) / most recently inserted (FIFO) / fully protected
    (PLRU: the count of tree levels pointing at the block). *)

val contents : t -> int list
(** All resident memory blocks, ascending. *)

val resident_in_set : t -> int -> int list
(** Blocks of one set; LRU/FIFO: youngest first, PLRU: way order. *)

val config : t -> Config.t
