(** Abstract cache states for must/may analysis (Ferdinand-style, the
    classical semantics the paper reuses from [8, 21]), parametric in
    the replacement policy (see {!Ucp_policy}; default LRU, for which
    the domains are bit-identical to the seed's LRU-only analyses).

    A state maps each resident memory block to an {e age bound}:

    - {b Must}: the age is an {e upper} bound — the block is guaranteed
      to be cached with at most that age.  Join is intersection with
      maximal ages.  A reference to a block present in the must state is
      an {e always-hit}.
    - {b May}: the age is a {e lower} bound — the block might be cached,
      never younger than that age.  Join is union with minimal ages.  A
      reference to a block absent from the may state is an
      {e always-miss}.

    States are immutable; [update] implements the abstract update Û of
    the selected policy, and [fill] the prefetch-extended semantics in
    which a block is installed without a demand access (as in the
    prefetching extension of the abstract semantics [22]).  Policies
    whose aging depends on the access outcome (FIFO) additionally take
    a classification [?hint] for the transferred access; [Unknown] is
    always sound and LRU/PLRU ignore hints entirely. *)

type kind = Ucp_policy.kind = Must | May

type t

val empty : ?policy:Ucp_policy.id -> Config.t -> kind -> t
(** Cold cache: nothing resident.  For must analysis this is also the
    sound "no guarantees" element used at unknown program points.
    Functional (per-set association list) representation.
    @raise Invalid_argument if the policy rejects the configuration's
    associativity (PLRU requires a power of two). *)

val empty_flat :
  ?policy:Ucp_policy.id -> base:int -> universe:int -> Config.t -> kind -> t
(** Cold cache in the cacheaudit-style flat age-vector representation:
    one packed int array over the memory blocks
    [\[base, base + universe)], absence encoded by saturation at the
    policy's eviction threshold.  [base] keeps the vector dense — code
    blocks sit near the layout's anchor address, so the array spans the
    program's id range, not the address space.  Same abstract semantics
    as {!empty} (qcheck-tested equivalent), cheaper transfers and
    joins.  All states flowing into {!join}, {!leq} or {!equal}
    together must share one representation (base and universe);
    operations on blocks outside the universe raise
    [Invalid_argument]. *)

val is_flat : t -> bool
(** Whether this state uses the flat age-vector representation. *)

val kind : t -> kind
val config : t -> Config.t

val policy : t -> Ucp_policy.id
(** The replacement policy this state models. *)

val update : ?hint:Ucp_policy.hint -> t -> int -> t
(** Abstract update for a demand reference to a memory block.  [?hint]
    (default [Unknown]) is the classification of this very access, when
    the caller knows it. *)

val fill : ?hint:Ucp_policy.hint -> t -> int -> t
(** Abstract effect of a completed prefetch of a memory block; [?hint]
    says whether the block is known resident ([Hit]), known absent
    ([Miss]) or unknown. *)

val copy : t -> t
(** Independent deep copy, for use with the destructive variants
    below: mutations of the copy never alias the original. *)

val update_ip : ?hint:Ucp_policy.hint -> t -> int -> unit
(** Destructive {!update}, for the analysis hot loop: mutates [t] in
    place.  Only apply to states obtained from {!copy} that no other
    holder can observe — one copy per node transfer instead of one
    allocation per instruction slot. *)

val fill_ip : ?hint:Ucp_policy.hint -> t -> int -> unit
(** Destructive {!fill}; same ownership contract as {!update_ip}. *)

val join : t -> t -> t
(** Must: intersection/max-age.  May: union/min-age.
    @raise Invalid_argument when kinds, configurations or policies
    differ. *)

val leq : t -> t -> bool
(** Domain order with {!join} as an upper bound: [leq a b] iff every
    concrete cache described by [a] is also described by [b].
    @raise Invalid_argument when kinds, configurations or policies
    differ. *)

val contains : t -> int -> bool
(** Membership in the abstract state (guaranteed for must, possible for
    may). *)

val age : t -> int -> int option
(** Age bound of a block, if resident. *)

val blocks : t -> int list
(** Resident blocks, ascending (the paper's [B(ĉ)], Definition 9). *)

val victims : ?hint:Ucp_policy.hint -> t -> int -> int list
(** [victims t mb] lists the blocks that [update t mb] (under the same
    hint) removes from the state — for must analysis, the references
    that lose their cached guarantee.  This implements the replacement
    detection of Property 3 that drives prefetch-candidate discovery,
    and asks the policy domain who can be evicted. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
