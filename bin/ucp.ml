(* ucp: command-line driver for the unlocked-cache-prefetching tool
   flow: analyze / optimize / simulate single use cases, compare
   baselines, run the paper's experiment sweeps. *)

open Cmdliner
module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Suite = Ucp_workloads.Suite
module Pipeline = Ucp_core.Pipeline
module Experiments = Ucp_core.Experiments
module Report = Ucp_core.Report
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Optimizer = Ucp_prefetch.Optimizer
module Baselines = Ucp_prefetch.Baselines
module Simulator = Ucp_sim.Simulator

(* ------------------------------------------------------------------ *)
(* argument converters *)

let program_conv =
  let parse s =
    match Suite.find s with
    | program -> Ok program
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown program %S (try `ucp list')" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Ucp_isa.Program.name p))

let config_conv =
  let parse s =
    match List.assoc_opt s Config.paper_configs with
    | Some c -> Ok c
    | None -> (
      match String.split_on_char ',' s with
      | [ a; b; c ] -> (
        try
          Ok
            (Config.make ~assoc:(int_of_string a) ~block_bytes:(int_of_string b)
               ~capacity:(int_of_string c))
        with Invalid_argument m | Failure m -> Error (`Msg m))
      | _ -> Error (`Msg "expected a Table 2 id (k1..k36) or `assoc,block,capacity'"))
  in
  Arg.conv (parse, Config.pp)

let tech_conv =
  let parse = function
    | "45nm" | "45" -> Ok Tech.nm45
    | "32nm" | "32" -> Ok Tech.nm32
    | s -> Error (`Msg (Printf.sprintf "unknown technology %S (45nm | 32nm)" s))
  in
  Arg.conv (parse, Tech.pp)

let policy_conv =
  let parse s =
    match Ucp_policy.of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Ucp_policy.pp)

let refine_conv =
  let parse s =
    match Ucp_refine.Mode.of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Ucp_refine.Mode.pp)

let program_arg =
  Arg.(
    required
    & opt (some program_conv) None
    & info [ "p"; "program" ] ~docv:"NAME" ~doc:"Benchmark program (see `ucp list').")

let config_arg =
  Arg.(
    value
    & opt config_conv (List.assoc "k14" Config.paper_configs)
    & info [ "k"; "config" ] ~docv:"CONFIG"
        ~doc:"Cache configuration: Table 2 id or assoc,block,capacity (default k14).")

let tech_arg =
  Arg.(
    value
    & opt tech_conv Tech.nm45
    & info [ "t"; "tech" ] ~docv:"TECH" ~doc:"Process technology: 45nm or 32nm.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulator seed.")

let policy_arg =
  Arg.(
    value
    & opt policy_conv Ucp_policy.Lru
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Cache replacement policy: lru, fifo or plru (default lru).")

(* ------------------------------------------------------------------ *)
(* commands *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, p) ->
        Printf.printf "%-4s %-14s %5d slots  %s\n" (Suite.paper_id name) name
          (Ucp_isa.Program.total_slots p)
          (Suite.size_class p))
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the 37 workload programs.")
    Term.(const run $ const ())

let tables_cmd =
  let run () =
    print_string (Report.table1 ());
    print_newline ();
    print_string (Report.table2 ())
  in
  Cmd.v (Cmd.info "tables" ~doc:"Print Tables 1 and 2 of the paper.")
    Term.(const run $ const ())

let analyze_cmd =
  let run program config tech policy =
    let model = Pipeline.model config tech in
    let w = Wcet.compute ~policy program config model in
    let ah, am, nc = Analysis.classification_counts w.Wcet.analysis in
    Printf.printf "program            : %s\n" (Ucp_isa.Program.name program);
    Printf.printf "cache              : %s, %s, %s\n" (Config.id config)
      tech.Tech.label
      (Ucp_policy.to_string policy);
    Printf.printf "tau_w (memory)     : %d cycles\n" w.Wcet.tau;
    Printf.printf "WCET-path misses   : %d\n" (Wcet.wcet_misses w);
    Printf.printf "miss bound         : %d\n" (Analysis.miss_count_bound w.Wcet.analysis);
    Printf.printf "classification     : AH=%d AM=%d NC=%d (expanded slots)\n" ah am nc;
    Printf.printf "expanded nodes     : %d\n"
      (Ucp_cfg.Vivu.node_count (Analysis.vivu w.Wcet.analysis));
    Printf.printf "fixpoint passes    : %d\n" (Analysis.fixpoint_passes w.Wcet.analysis)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Cache-aware WCET analysis of one use case.")
    Term.(const run $ program_arg $ config_arg $ tech_arg $ policy_arg)

let optimize_cmd =
  let run program config tech policy verbose =
    let model = Pipeline.model config tech in
    let r = Optimizer.optimize ~policy program config model in
    Printf.printf "tau_w              : %d -> %d cycles (%.1f%% reduction)\n"
      r.Optimizer.tau_before r.Optimizer.tau_after
      (100.0
      *. (1.0
         -. (float_of_int r.Optimizer.tau_after /. float_of_int r.Optimizer.tau_before)));
    Printf.printf "prefetches         : %d inserted, %d candidates rolled back\n"
      (List.length r.Optimizer.insertions)
      r.Optimizer.rejected;
    Printf.printf "analysis rounds    : %d\n" r.Optimizer.rounds;
    if verbose then
      List.iteri
        (fun i (ins : Optimizer.insertion) ->
          Printf.printf "  #%-3d pf(uid %d) -> block of uid %d  gain=%d\n" i
            ins.Optimizer.prefetch_uid ins.Optimizer.target_uid ins.Optimizer.est_gain)
        r.Optimizer.insertions
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List every insertion.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the WCET-safe prefetch optimization on one use case.")
    Term.(const run $ program_arg $ config_arg $ tech_arg $ policy_arg $ verbose)

let simulate_cmd =
  let run program config tech policy seed optimized =
    let model = Pipeline.model config tech in
    let program =
      if optimized then
        (Optimizer.optimize ~policy program config model).Optimizer.program
      else program
    in
    let stats = Simulator.run ~seed ~policy program config model in
    let b = Ucp_energy.Account.energy model stats.Simulator.counts in
    Printf.printf "executed           : %d instructions (%d prefetches)\n"
      stats.Simulator.executed stats.Simulator.executed_prefetches;
    Printf.printf "cycles (ACET)      : %d\n" (Simulator.acet stats);
    Printf.printf "miss rate          : %.2f%%\n" (100.0 *. stats.Simulator.miss_rate);
    Printf.printf "late-prefetch stall: %d cycles\n"
      stats.Simulator.late_prefetch_stall_cycles;
    Format.printf "energy             : %a@." Ucp_energy.Account.pp_breakdown b
  in
  let optimized =
    Arg.(value & flag & info [ "O"; "optimized" ] ~doc:"Simulate the optimized binary.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Trace-simulate one use case (ACET, miss rate, energy).")
    Term.(
      const run $ program_arg $ config_arg $ tech_arg $ policy_arg $ seed_arg
      $ optimized)

let baselines_cmd =
  let run program config tech seed =
    let model = Pipeline.model config tech in
    let t =
      Ucp_util.Table.create
        [ "scheme"; "wcet"; "acet"; "miss"; "energy (pJ)"; "extra dram" ]
    in
    let row name wcet stats =
      let b = Ucp_energy.Account.energy model stats.Simulator.counts in
      Ucp_util.Table.add_row t
        [
          name;
          (match wcet with Some x -> string_of_int x | None -> "n/a");
          string_of_int (Simulator.acet stats);
          Printf.sprintf "%.2f%%" (100.0 *. stats.Simulator.miss_rate);
          Printf.sprintf "%.0f" b.Ucp_energy.Account.total_pj;
          string_of_int stats.Simulator.counts.Ucp_energy.Account.prefetch_dram_reads;
        ]
    in
    let wcet_of p = Wcet.tau_with_residual (Wcet.compute ~with_may:false p config model) in
    row "on-demand" (Some (wcet_of program)) (Simulator.run ~seed program config model);
    let opt = (Optimizer.optimize program config model).Optimizer.program in
    row "this paper" (Some (wcet_of opt)) (Simulator.run ~seed opt config model);
    let streaming =
      (Optimizer.optimize ~placement:Optimizer.Latest_effective program config model)
        .Optimizer.program
    in
    row "latest-effective (ablation)" (Some (wcet_of streaming))
      (Simulator.run ~seed streaming config model);
    let bb = Baselines.bb_start program config model in
    row "bb-start [5]" (Some (wcet_of bb)) (Simulator.run ~seed bb config model);
    let lock = Baselines.lock_greedy program config model in
    row "locked cache [4,14]"
      (Some lock.Baselines.tau_locked)
      (Simulator.run ~seed ~locked:lock.Baselines.locked_blocks program config model);
    if config.Config.assoc > 1 then begin
      let h = Baselines.lock_hybrid ~ways:1 program config model in
      row "hybrid lock+prefetch [16,2]"
        (Some h.Baselines.hybrid_tau)
        (Simulator.run ~seed ~pinned:h.Baselines.hybrid_pinned
           ~cache_config:h.Baselines.hybrid_config h.Baselines.hybrid_program config
           model)
    end;
    List.iter
      (fun (name, mk) ->
        if name <> "none" then
          row ("hw " ^ name) None (Simulator.run ~seed ~hw:(mk ()) program config model))
      (Ucp_sim.Hw_prefetch.all_schemes ~block_bytes:config.Config.block_bytes);
    Ucp_util.Table.print t
  in
  Cmd.v
    (Cmd.info "baselines"
       ~doc:"Compare the paper's technique against software and hardware baselines.")
    Term.(const run $ program_arg $ config_arg $ tech_arg $ seed_arg)

let dump_cmd =
  let run program config tech =
    let model = Pipeline.model config tech in
    let w = Wcet.compute program config model in
    let analysis = w.Wcet.analysis in
    let vivu = Analysis.vivu analysis in
    Format.printf "%a@." Ucp_isa.Program.pp program;
    let layout = Analysis.layout analysis in
    Printf.printf "layout: %d slots in %d memory blocks

"
      (Ucp_isa.Program.total_slots program)
      (Ucp_isa.Layout.code_mem_blocks layout);
    Printf.printf "WCET path (per reference: block, classification):
";
    let last_node = ref (-1) in
    Array.iter
      (fun (node, pos) ->
        if node <> !last_node then begin
          last_node := node;
          Format.printf "@.%a n_w=%d: " (Ucp_cfg.Vivu.pp_node vivu) node w.Wcet.n_w.(node)
        end;
        Format.printf "%s "
          (Ucp_wcet.Classification.to_string (Analysis.classif analysis ~node ~pos)))
      (Wcet.path_refs w);
    Format.printf "@.@.tau_w = %d cycles@." w.Wcet.tau
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Print a program listing, its layout and the classified WCET path.")
    Term.(const run $ program_arg $ config_arg $ tech_arg)

let ipet_cmd =
  let run program config tech =
    let model = Pipeline.model config tech in
    let w = Wcet.compute program config model in
    let t0 = Sys.time () in
    let expanded = Ucp_wcet.Ipet.solve w in
    let t_expanded = Sys.time () -. t0 in
    let t0 = Sys.time () in
    let cfg_level = Ucp_wcet.Ipet.solve_cfg w in
    let t_cfg = Sys.time () -. t0 in
    Printf.printf "longest path (DAG)     : %d cycles
" w.Wcet.tau;
    Printf.printf "IPET ILP (expanded)    : %d cycles (%.3fs)  agree=%b
"
      expanded.Ucp_wcet.Ipet.tau t_expanded
      (expanded.Ucp_wcet.Ipet.tau = w.Wcet.tau);
    Printf.printf "IPET ILP (block-level) : %d cycles (%.3fs)  slack=+%.1f%%
"
      cfg_level.Ucp_wcet.Ipet.tau t_cfg
      (100.0
      *. (float_of_int (cfg_level.Ucp_wcet.Ipet.tau - w.Wcet.tau)
         /. float_of_int w.Wcet.tau))
  in
  Cmd.v
    (Cmd.info "ipet"
       ~doc:"Compare the longest-path WCET with the expanded and block-level IPET ILPs.")
    Term.(const run $ program_arg $ config_arg $ tech_arg)

let persistence_cmd =
  let run program config =
    (* per loop of the program: which memory blocks are persistent
       within its body, judged from the concrete per-iteration
       reference trace of the loop body *)
    let layout =
      Ucp_isa.Layout.make program ~block_bytes:config.Config.block_bytes
    in
    let forest = Ucp_cfg.Loops.analyze program in
    Array.iter
      (fun (l : Ucp_cfg.Loops.loop) ->
        let trace = ref [] in
        Array.iteri
          (fun b inside ->
            if inside then
              for pos = 0 to Ucp_isa.Program.slots program b - 1 do
                trace := Ucp_isa.Layout.mem_block layout ~block:b ~pos :: !trace
              done)
          l.Ucp_cfg.Loops.body;
        let persistent =
          Ucp_cache.Persistence.analyze_scope config (List.rev !trace)
        in
        Printf.printf
          "loop header b%d (bound %d): %d blocks referenced, %d persistent
"
          l.Ucp_cfg.Loops.header l.Ucp_cfg.Loops.bound
          (List.length (List.sort_uniq compare !trace))
          (List.length persistent))
      forest.Ucp_cfg.Loops.loops
  in
  Cmd.v
    (Cmd.info "persistence"
       ~doc:"Per-loop persistence analysis: blocks that miss at most once per entry.")
    Term.(const run $ program_arg $ config_arg)

let verify_cmd =
  let run program config tech policy seed =
    let model = Pipeline.model config tech in
    Printf.printf "use case           : %s, %s, %s, %s\n"
      (Ucp_isa.Program.name program) (Config.id config) tech.Tech.label
      (Ucp_policy.to_string policy);
    let w0 = Wcet.compute ~with_may:true ~policy program config model in
    let r = Optimizer.optimize ~initial:w0 program config model in
    let w1 =
      Wcet.compute ~with_may:true ~policy r.Optimizer.program config model
    in
    let failed = ref 0 in
    let check name result =
      match result with
      | Ok () -> Printf.printf "  [pass] %s\n" name
      | Error msg ->
        incr failed;
        Printf.printf "  [FAIL] %s: %s\n" name msg
    in
    check "ipet-certificate (original)" (Ucp_verify.certify_ipet w0);
    check "ipet-certificate (optimized)" (Ucp_verify.certify_ipet w1);
    check "witness-replay (original)" (Ucp_verify.replay_witness ~seed w0);
    check "witness-replay (optimized)" (Ucp_verify.replay_witness ~seed w1);
    check "optimizer-audit-trail"
      (Ucp_verify.audit_trail ~original:w0 ~optimized:w1 r);
    if !failed = 0 then
      Printf.printf "all certification obligations hold (tau %d -> %d)\n"
        (Wcet.tau_with_residual w0) (Wcet.tau_with_residual w1)
    else begin
      Printf.printf "%d obligation%s failed\n" !failed
        (if !failed = 1 then "" else "s");
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Independently certify one use case: LP/IPET duality certificates, \
          WCET witness replay on the concrete simulator, and the optimizer's \
          audit trail (Theorem 1, Eq. 5-9).  Exits nonzero if any obligation \
          fails.")
    Term.(const run $ program_arg $ config_arg $ tech_arg $ policy_arg $ seed_arg)

let experiment_cmd =
  let run full figure jobs timeout checkpoint resume programs configs techs
      policies audit refine trace heartbeat metrics sweep_out =
    (* fault-injection hooks for robustness testing: parsed up front so a
       typo in UCP_FAULT aborts before the sweep starts *)
    (try Ucp_core.Fault.load_env ()
     with Invalid_argument msg ->
       Printf.eprintf "ucp: %s\n" msg;
       exit 124);
    let configs =
      match configs with
      | Some ids ->
        List.map
          (fun id ->
            match List.assoc_opt id Config.paper_configs with
            | Some c -> (id, c)
            | None ->
              Printf.eprintf "ucp: unknown configuration %S (k1..k36)\n" id;
              exit 124)
          ids
      | None ->
        if full then Experiments.default_configs else Experiments.quick_configs
    in
    let programs =
      match programs with
      | None -> Suite.all
      | Some names ->
        List.map
          (fun n ->
            match List.assoc_opt n Suite.all with
            | Some p -> (n, p)
            | None ->
              Printf.eprintf "ucp: unknown program %S (try `ucp list')\n" n;
              exit 124)
          names
    in
    let jobs =
      match jobs with
      | Some j -> j
      | None -> (
        try Ucp_core.Parallel.default_jobs ()
        with Invalid_argument msg ->
          Printf.eprintf "ucp: %s\n" msg;
          exit 124)
    in
    let timeout =
      match timeout with
      | Some _ -> timeout
      | None -> (
        match Sys.getenv_opt "UCP_CASE_TIMEOUT" with
        | None | Some "" -> None
        | Some s -> (
          match float_of_string_opt s with
          | Some t when t > 0.0 -> Some t
          | Some _ | None ->
            Printf.eprintf "ucp: UCP_CASE_TIMEOUT=%s: expected positive seconds\n" s;
            exit 124))
    in
    if resume && checkpoint = None then begin
      Printf.eprintf "ucp: --resume requires --checkpoint PATH\n";
      exit 124
    end;
    let progress ~done_ ~total =
      Printf.eprintf "\r[sweep] %d/%d use cases%!" done_ total
    in
    (* probe output paths before the (possibly hours-long) sweep so a
       bad --trace/--sweep-out path fails immediately instead of
       discarding the finished run; the real writes are atomic or
       whole-file, so an existing file is never left half-written *)
    List.iter
      (fun path ->
        match path with
        | None -> ()
        | Some path -> (
          try close_out (open_out_gen [ Open_append; Open_creat ] 0o644 path)
          with Sys_error msg ->
            Printf.eprintf "ucp: %s\n" msg;
            exit 124))
      [ trace; sweep_out ];
    (* tracing implies metrics so the exported spans and the counter
       table describe the same run *)
    let metrics_on = metrics || trace <> None in
    if metrics_on then Ucp_obs.Metrics.enable ();
    if trace <> None then Ucp_obs.Trace.start ();
    let s =
      try
        Ucp_core.Parallel.sweep ~programs ~configs ?techs ~policies ~audit
          ~refine ~jobs ~progress ?heartbeat ?timeout ?checkpoint ~resume ()
      with Failure msg ->
        (* e.g. resuming against a journal for a different grid *)
        Printf.eprintf "ucp: %s\n" msg;
        exit 2
    in
    Ucp_obs.Trace.stop ();
    (match trace with
    | None -> ()
    | Some path ->
      Ucp_obs.Trace.export path;
      Printf.eprintf "[trace] %d spans -> %s\n%!"
        (List.length (Ucp_obs.Trace.spans ()))
        path);
    Printf.eprintf "\r[sweep] %d use cases on %d worker%s in %.1fs wall\n%!"
      s.Ucp_core.Parallel.cases s.Ucp_core.Parallel.jobs
      (if s.Ucp_core.Parallel.jobs = 1 then "" else "s")
      s.Ucp_core.Parallel.wall_s;
    if s.Ucp_core.Parallel.resumed > 0 then
      Printf.eprintf "[sweep] %d case%s replayed from checkpoint\n%!"
        s.Ucp_core.Parallel.resumed
        (if s.Ucp_core.Parallel.resumed = 1 then "" else "s");
    let records = s.Ucp_core.Parallel.records in
    let metrics_dump = if metrics_on then Ucp_obs.Metrics.dump () else [] in
    (match sweep_out with
    | None -> ()
    | Some path ->
      let jsonl =
        Report.sweep_jsonl ~wall_s:s.Ucp_core.Parallel.wall_s
          ~jobs:s.Ucp_core.Parallel.jobs ~timings:s.Ucp_core.Parallel.timings
          ~outcomes:s.Ucp_core.Parallel.results
          ?metrics:(if metrics_dump = [] then None else Some metrics_dump)
          records
      in
      let oc = open_out path in
      output_string oc jsonl;
      close_out oc;
      Printf.eprintf "[sweep] JSONL summary -> %s\n%!" path);
    let out =
      match figure with
      | None -> Report.all records
      | Some 3 -> Report.figure3 records
      | Some 4 -> Report.figure4 records
      | Some 5 -> Report.figure5 records
      | Some 7 -> Report.figure7 records
      | Some 8 -> Report.figure8 records
      | Some n -> Printf.sprintf "no such figure: %d (3,4,5,7,8)\n" n
    in
    print_string out;
    prerr_string (Report.outcome_summary s.Ucp_core.Parallel.results);
    if List.length policies > 1 then
      prerr_string
        (Report.policy_outcome_summary ~policies s.Ucp_core.Parallel.results);
    if metrics_on then begin
      prerr_string (Report.metrics_table metrics_dump);
      if s.Ucp_core.Parallel.workers <> [||] then
        prerr_string
          (Report.worker_table ~wall_s:s.Ucp_core.Parallel.wall_s
             s.Ucp_core.Parallel.workers)
    end;
    if s.Ucp_core.Parallel.failures <> [] then exit 3
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"All 36 configurations (2664 use cases) as in the paper.")
  in
  let figure =
    Arg.(
      value
      & opt (some int) None
      & info [ "figure" ] ~docv:"N" ~doc:"Reproduce a single figure (3,4,5,7,8).")
  in
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "expected a positive worker count")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let jobs =
    Arg.(
      value
      & opt (some jobs_conv) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the sweep (default: $(b,UCP_JOBS) if set, else \
             the recommended domain count).")
  in
  let timeout_conv =
    let parse s =
      match float_of_string_opt s with
      | Some t when t > 0.0 -> Ok t
      | Some _ | None -> Error (`Msg "expected a positive number of seconds")
    in
    Arg.conv (parse, Format.pp_print_float)
  in
  let timeout =
    Arg.(
      value
      & opt (some timeout_conv) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-use-case deadline in seconds; a case that overruns it is \
             reported as timed out instead of blocking the sweep (default: \
             $(b,UCP_CASE_TIMEOUT) if set, else none).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:
            "Append each finished use case to a JSONL journal at $(docv), \
             flushed per record, so an interrupted sweep can be resumed.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay completed cases from the $(b,--checkpoint) journal and \
             evaluate only the rest; the journal must match the sweep grid.")
  in
  let programs =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "programs" ] ~docv:"NAMES"
          ~doc:"Comma-separated subset of workload programs to sweep.")
  in
  let configs =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "configs" ] ~docv:"IDS"
          ~doc:
            "Comma-separated subset of Table 2 configurations (k1..k36); \
             overrides $(b,--full)/quick selection.")
  in
  let techs =
    Arg.(
      value
      & opt (some (list tech_conv)) None
      & info [ "techs" ] ~docv:"TECHS"
          ~doc:"Comma-separated process technologies (default: 45nm,32nm).")
  in
  let policies =
    Arg.(
      value
      & opt (list policy_conv) [ Ucp_policy.Lru ]
      & info [ "policies" ] ~docv:"POLICIES"
          ~doc:
            "Comma-separated replacement policies (lru, fifo, plru); each \
             multiplies the use-case grid (default lru).")
  in
  let audit_conv =
    let parse s =
      match Ucp_verify.mode_of_string s with
      | Ok m -> Ok m
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv
      (parse, fun ppf m -> Format.pp_print_string ppf (Ucp_verify.mode_to_string m))
  in
  let audit =
    Arg.(
      value
      & opt audit_conv Ucp_verify.Off
      & info [ "audit" ] ~docv:"MODE"
          ~doc:
            "Certification audit of the sweep: $(b,off) (default), \
             $(b,sample:N) (deterministic 1-in-N of the use cases, stable \
             across resume) or $(b,full).  An audited case whose certificate \
             fails any obligation is demoted to an invariant violation naming \
             the obligation.")
  in
  let refine =
    Arg.(
      value
      & opt refine_conv Ucp_refine.Mode.Nc
      & info [ "refine" ] ~docv:"MODE"
          ~doc:
            "Exact classification refinement after the abstract fixpoint: \
             $(b,off), $(b,nc) (default — per-set product exploration of the \
             not-classified references, reclassifying the provable ones) or \
             $(b,full) (additionally cross-checks every abstract \
             always-hit/always-miss against the exploration).  The base \
             record fields stay unrefined; refined bounds ride along as \
             $(b,refine_*) fields.  The mode is part of the checkpoint \
             fingerprint.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a span trace of the sweep (pipeline stages, fixpoint \
             passes, simplex/ILP solves, optimizer rounds, audit obligations) \
             and write it to $(docv) as Chrome trace_event JSON — load it in \
             Perfetto or inspect it with $(b,ucp trace).  Implies \
             $(b,--metrics).")
  in
  let heartbeat =
    Arg.(
      value
      & opt (some timeout_conv) None
      & info [ "heartbeat" ] ~docv:"SECS"
          ~doc:
            "Print a liveness line (cases done, throughput, ETA) to stderr \
             every $(docv) seconds while the sweep runs.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Collect runtime counters (simplex pivots, ILP nodes, fixpoint \
             iterations, cache fetches per policy, per-case durations, GC \
             deltas) and print them after the sweep; with $(b,--sweep-out) \
             they are also embedded in the JSONL summary line.")
  in
  let sweep_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "sweep-out" ] ~docv:"PATH"
          ~doc:
            "Write the machine-readable sweep JSONL (one record per use case \
             plus a summary line) to $(docv).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run the evaluation sweep and print the paper's figures.")
    Term.(
      const run $ full $ figure $ jobs $ timeout $ checkpoint $ resume $ programs
      $ configs $ techs $ policies $ audit $ refine $ trace $ heartbeat
      $ metrics $ sweep_out)

(* ------------------------------------------------------------------ *)
(* ucp fuzz: generative differential fuzzing campaigns *)

let fuzz_cmd =
  let module Campaign = Ucp_fuzz.Campaign in
  let run seed count classes policies configs full techs refine refine_full_every
      jobs timeout corpus chaos chaos_serve out replay =
    Ucp_obs.Metrics.enable ();
    let out_channel, close_out_channel =
      match out with
      | None -> (stdout, fun () -> ())
      | Some path -> (
        try
          let oc = open_out path in
          (oc, fun () -> close_out oc)
        with Sys_error msg ->
          Printf.eprintf "ucp: %s\n" msg;
          exit 124)
    in
    let emit line =
      output_string out_channel line;
      output_char out_channel '\n'
    in
    match replay with
    | Some dir ->
      (* corpus replay: the CI pin over checked-in reproducers *)
      let ok, failures = Campaign.replay_corpus ~emit ~dir () in
      close_out_channel ();
      Printf.eprintf "[fuzz] corpus replay: %d ok, %d failed\n" ok
        (List.length failures);
      List.iter
        (fun (path, msg) -> Printf.eprintf "[fuzz]   %s: %s\n" path msg)
        failures;
      if failures <> [] then exit 1
    | None ->
      let classes =
        List.iter
          (fun c ->
            if Ucp_workloads.Generate.find_class c = None then begin
              Printf.eprintf "ucp: unknown size class %S (s | m | l)\n" c;
              exit 124
            end)
          classes;
        classes
      in
      let configs =
        match configs with
        | Some ids ->
          List.map
            (fun id ->
              match List.assoc_opt id Config.paper_configs with
              | Some c -> (id, c)
              | None ->
                Printf.eprintf "ucp: unknown configuration %S (k1..k36)\n" id;
                exit 124)
            ids
        | None ->
          if full then Experiments.default_configs else Experiments.quick_configs
      in
      if count < 1 then begin
        Printf.eprintf "ucp: --count must be positive\n";
        exit 124
      end;
      let chaos_dir =
        if not chaos_serve then None
        else begin
          let dir =
            Filename.concat (Filename.get_temp_dir_name ())
              (Printf.sprintf "ucp-fuzz-%d" (Unix.getpid ()))
          in
          (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
          Some dir
        end
      in
      let cfg =
        {
          Campaign.c_seed = seed;
          c_count = count;
          c_classes = classes;
          c_policies = policies;
          c_configs = configs;
          c_techs = techs;
          c_refine = refine;
          c_refine_full_every = refine_full_every;
          c_jobs = jobs;
          c_timeout = timeout;
          c_corpus = corpus;
          c_chaos = chaos;
          c_serve = chaos_dir;
        }
      in
      let progress ~done_ ~total =
        Printf.eprintf "\r[fuzz] %d/%d cases%!" done_ total
      in
      let s = Campaign.run ~emit ~progress cfg in
      Printf.eprintf "\r[fuzz] %d cases: %d pass, %d findings (%d distinct), %d caught, %d timeouts, %d failed"
        s.Campaign.s_cases s.Campaign.s_pass s.Campaign.s_findings
        s.Campaign.s_distinct s.Campaign.s_caught s.Campaign.s_timeouts
        s.Campaign.s_failed;
      if s.Campaign.s_chaos_total > 0 then
        Printf.eprintf ", chaos %d/%d healed" s.Campaign.s_chaos_ok
          s.Campaign.s_chaos_total;
      prerr_newline ();
      List.iter (fun p -> Printf.eprintf "[fuzz] reproducer: %s\n" p) s.Campaign.s_corpus;
      close_out_channel ();
      (match chaos_dir with
      | Some dir when Campaign.clean s ->
        ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
      | Some dir -> Printf.eprintf "[fuzz] daemon scratch kept at %s\n" dir
      | None -> ());
      (* distinct exit code for findings so CI can tell "the fuzzer
         found a soundness bug" from an infrastructure error *)
      if not (Campaign.clean s) then exit 4
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed.  The whole plan — program seeds, size classes, \
             use-case axes, oracle choices — derives from it, so the same \
             seed replays record for record.")
  in
  let count =
    Arg.(
      value & opt int Campaign.default.Campaign.c_count
      & info [ "count" ] ~docv:"N" ~doc:"Generated programs to run (default 200).")
  in
  let classes =
    Arg.(
      value
      & opt (list string) Campaign.default.Campaign.c_classes
      & info [ "classes" ] ~docv:"CLS"
          ~doc:"Generator size classes to draw from: $(b,s), $(b,m), $(b,l).")
  in
  let policies =
    Arg.(
      value
      & opt (list policy_conv) Ucp_policy.all
      & info [ "policies" ] ~docv:"P"
          ~doc:
            "Replacement policies to fuzz (default all three: lru, fifo, \
             plru; plru degrades to lru on non-power-of-two associativity).")
  in
  let configs =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "configs" ] ~docv:"IDS"
          ~doc:
            "Cache configurations (Table 2 ids).  Overrides $(b,--full)/quick \
             selection.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Draw from all 36 Table 2 configurations instead of the quick 12.")
  in
  let techs =
    Arg.(
      value
      & opt (list tech_conv) [ Tech.nm45 ]
      & info [ "techs" ] ~docv:"T" ~doc:"Technology nodes (default 45nm).")
  in
  let refine =
    Arg.(
      value
      & opt refine_conv Ucp_refine.Mode.Nc
      & info [ "refine" ] ~docv:"MODE"
          ~doc:"Refinement mode of the end-to-end oracle (default nc).")
  in
  let refine_full_every =
    Arg.(
      value
      & opt int Campaign.default.Campaign.c_refine_full_every
      & info [ "refine-full-every" ] ~docv:"N"
          ~doc:
            "Expected period of the Mode.Full exploration cross-check oracle \
             (roughly one case in $(docv) runs it; 0 disables, default 4).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains (default: all cores).")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) (Some 60.)
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Per-case cooperative deadline (default 60).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Deposit shrunk reproducers here (one single-line JSON file per \
             distinct finding; created if missing).")
  in
  let chaos =
    Arg.(
      value & opt int 0
      & info [ "chaos" ] ~docv:"N"
          ~doc:
            "Run $(docv) injected-fault legs (alternating corrupt-cert and \
             corrupt-refine): the audit must catch every one; each catch is \
             shrunk and deposited like a finding.")
  in
  let chaos_serve =
    Arg.(
      value & flag
      & info [ "chaos-serve" ]
          ~doc:
            "Also run the live-daemon chaos leg: kill-worker, corrupt-store \
             and stall-request are injected against an in-process analysis \
             daemon whose answers must stay byte-identical to batch records.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH"
          ~doc:"Write the campaign JSONL there instead of stdout.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Replay every corpus entry under $(docv) instead of fuzzing: each \
             stored oracle must reproduce its recorded signature.  Exits 1 on \
             any mismatch.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generative differential fuzzing: seeded random DSL programs driven \
          through the abstract-vs-concrete classification oracle, the full \
          audited pipeline, the Mode.Full exploration cross-check and \
          batch-vs-daemon identity, with shrinking reproducers and chaos \
          campaigns.  Exits 0 when clean, 4 on findings.")
    Term.(
      const run $ seed $ count $ classes $ policies $ configs $ full $ techs
      $ refine $ refine_full_every $ jobs $ timeout $ corpus $ chaos
      $ chaos_serve $ out $ replay)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the analysis daemon.")

let serve_cmd =
  let run socket store jobs cache queue timeout refine access_log slow_log
      slow_threshold trace trace_seed =
    (try Ucp_core.Fault.load_env ()
     with Invalid_argument msg ->
       Printf.eprintf "ucp: %s\n" msg;
       exit 124);
    let cfg =
      {
        Ucp_serve.Server.socket;
        store_dir = store;
        jobs;
        cache_capacity = cache;
        queue_limit = queue;
        timeout;
        refine;
        access_log;
        slow_log;
        slow_threshold_s = slow_threshold;
        trace;
        trace_seed;
      }
    in
    match Ucp_serve.Server.run cfg with
    | () -> ()  (* graceful drain: exit 0 *)
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "ucp: serve: %s: %s %s\n" fn (Unix.error_message e) arg;
      exit 1
    | exception Invalid_argument msg ->
      Printf.eprintf "ucp: %s\n" msg;
      exit 124
  in
  let store =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Result store directory (created if missing) — the daemon's only \
             persistent state.")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains for cold evaluations (default 2).")
  in
  let cache =
    Arg.(
      value & opt int 64
      & info [ "cache" ] ~docv:"N"
          ~doc:"In-memory LRU result-cache entries; 0 disables it (default 64).")
  in
  let queue =
    Arg.(
      value & opt int 32
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission bound: cold evaluations in flight before further cold \
             queries are shed with a retry hint (default 32).  Cache and \
             store hits are never shed.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Per-case cooperative deadline for daemon-side evaluation.")
  in
  let refine =
    Arg.(
      value
      & opt refine_conv Ucp_refine.Mode.Nc
      & info [ "refine" ] ~docv:"MODE"
          ~doc:
            "Exact classification refinement for cold evaluations: $(b,off), \
             $(b,nc) (default) or $(b,full).  Part of the store's content \
             address, so entries computed under different modes never alias.")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per request: trace id, case id, tier \
             (cache/store/cold/shed), outcome, latency, queue depth.  \
             Deterministic modulo the ts/latency_s fields.")
  in
  let slow_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-log" ] ~docv:"FILE"
          ~doc:
            "Append requests at or above --slow-threshold as JSON lines (same \
             shape as the access log, plus the threshold).")
  in
  let slow_threshold =
    Arg.(
      value & opt float 1.0
      & info [ "slow-threshold" ] ~docv:"SECS"
          ~doc:"Slow-query threshold in seconds (default 1.0).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans while serving and write a Chrome trace (open in \
             Perfetto) on drain.  Every span of a request carries the \
             request's trace id, so one request reads as one connected tree.  \
             The span buffer is a bounded ring: see \
             trace_spans_dropped_total.")
  in
  let trace_seed =
    Arg.(
      value & opt int 0
      & info [ "trace-seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the deterministic trace ids assigned to requests that \
             arrive without one (default 0).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-only analysis daemon: answers use-case queries from an \
          in-memory LRU cache, a self-healing content-addressed store, or cold \
          evaluation on a worker pool.  SIGTERM/SIGINT (or `ucp query \
          --shutdown') drains in-flight requests and exits 0; after kill -9 it \
          recovers from the store alone.")
    Term.(
      const run $ socket_arg $ store $ jobs $ cache $ queue $ timeout $ refine
      $ access_log $ slow_log $ slow_threshold $ trace $ trace_seed)

let query_cmd =
  let run socket ids health metrics shutdown retries seed =
    if ids = [] && (not health) && (not metrics) && not shutdown then begin
      Printf.eprintf
        "ucp: query: nothing to do (give case IDs, --health, --metrics or --shutdown)\n";
      exit 124
    end;
    let failed = ref false in
    let module P = Ucp_serve.Protocol in
    let source = function
      | P.Memory -> "memory"
      | P.Store -> "store"
      | P.Computed -> "computed"
    in
    List.iteri
      (fun index id ->
        (* client-assigned trace id, deterministic from (--seed, index):
           identically seeded runs stamp identical ids on the daemon's
           access log, which is what the CI byte-compares *)
        let ctx = Ucp_obs.Ctx.derive ~seed ~index in
        let trace_id = Some (Ucp_obs.Ctx.trace_hex ctx) in
        match
          Ucp_serve.Client.query ~retries ~seed ~socket (P.Case { id; trace_id })
        with
        | Ok (P.Record { source = src; json; trace_id = echoed; _ }) ->
          Printf.eprintf "[query] %s answered from %s trace=%s\n%!" id (source src)
            (Option.value ~default:"-" echoed);
          print_string json;
          print_newline ()
        | Ok (P.Failed { message; _ }) ->
          Printf.eprintf "ucp: query %s: %s\n" id message;
          failed := true
        | Ok (P.Retry { reason; _ }) ->
          Printf.eprintf "ucp: query %s: still shedding load (%s)\n" id reason;
          failed := true
        | Ok (P.Health_stats _ | P.Metrics_text _ | P.Bye) ->
          Printf.eprintf "ucp: query %s: unexpected response kind\n" id;
          failed := true
        | Error msg ->
          Printf.eprintf "ucp: query %s: %s\n" id msg;
          failed := true)
      ids;
    if health then begin
      match Ucp_serve.Client.query ~retries ~seed ~socket P.Health with
      | Ok (P.Health_stats { counters; gauges; hists }) ->
        List.iter (fun (k, v) -> Printf.printf "%s=%d\n" k v) counters;
        List.iter (fun (k, x) -> Printf.printf "%s=%s\n" k (Ucp_obs.Expo.fmt_float x)) gauges;
        List.iter
          (fun (k, { P.hs_count; hs_sum }) ->
            Printf.printf "%s_count=%d\n%s_sum=%s\n" k hs_count k
              (Ucp_obs.Expo.fmt_float hs_sum))
          hists
      | Ok _ ->
        Printf.eprintf "ucp: health: unexpected response kind\n";
        failed := true
      | Error msg ->
        Printf.eprintf "ucp: health: %s\n" msg;
        failed := true
    end;
    if metrics then begin
      match Ucp_serve.Client.query ~retries ~seed ~socket P.Metrics with
      | Ok (P.Metrics_text text) -> print_string text
      | Ok _ ->
        Printf.eprintf "ucp: metrics: unexpected response kind\n";
        failed := true
      | Error msg ->
        Printf.eprintf "ucp: metrics: %s\n" msg;
        failed := true
    end;
    if shutdown then begin
      match Ucp_serve.Client.query ~socket P.Shutdown with
      | Ok P.Bye -> Printf.eprintf "[query] daemon shutting down\n%!"
      | Ok _ ->
        Printf.eprintf "ucp: shutdown: unexpected response kind\n";
        failed := true
      | Error msg ->
        Printf.eprintf "ucp: shutdown: %s\n" msg;
        failed := true
    end;
    if !failed then exit 1
  in
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:
            "Use-case ids (<program>:<config>:<tech>:<policy>, e.g. \
             fft1:k14:45nm:lru).  Each answer is printed to stdout as the \
             same JSONL record a batch `ucp experiment --sweep-out' would \
             emit; the answer's source (memory/store/computed) goes to \
             stderr.")
  in
  let health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Print the daemon's statistics (cache hits/misses, queue depth, \
             shed count, worker restarts, quarantined store entries, metric \
             counters) as key=value lines.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the daemon's full metrics registry (counters, gauges, \
             histograms with buckets) as Prometheus text-format exposition, \
             including the per-tier serve_latency_s histograms.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit (never retried).")
  in
  let retries =
    Arg.(
      value & opt int 8
      & info [ "retries" ] ~docv:"N"
          ~doc:"Attempts for idempotent queries before giving up (default 8).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the deterministic retry-backoff jitter and of the \
             client-assigned trace ids (default 1).")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Query the analysis daemon.  Idempotent queries retry through daemon \
          restarts and load shedding with deterministic exponential backoff; \
          each case query carries a deterministic client-assigned trace id \
          that the daemon echoes and stamps on its spans and log lines.  \
          Exits 0 when everything was answered, 1 otherwise, 124 on bad \
          arguments.")
    Term.(
      const run $ socket_arg $ ids $ health $ metrics $ shutdown $ retries $ seed)

let trace_cmd =
  let run file top =
    let spans =
      match Ucp_obs.Trace.parse_file file with
      | Ok spans -> spans
      | Error msg ->
        Printf.eprintf "ucp: %s: %s\n" file msg;
        exit 1
      | exception Sys_error msg ->
        Printf.eprintf "ucp: %s\n" msg;
        exit 1
    in
    (* per-name aggregate *)
    let by_name = Hashtbl.create 16 in
    List.iter
      (fun (s : Ucp_obs.Trace.span) ->
        let prev = try Hashtbl.find by_name s.Ucp_obs.Trace.span_name with Not_found -> [] in
        Hashtbl.replace by_name s.Ucp_obs.Trace.span_name (s :: prev))
      spans;
    let names =
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_name [])
    in
    let agg = Ucp_util.Table.create [ "span"; "count"; "total (ms)"; "mean (ms)"; "max (ms)" ] in
    List.iter
      (fun name ->
        let ss = Hashtbl.find by_name name in
        let n = List.length ss in
        let total =
          List.fold_left (fun acc s -> acc +. s.Ucp_obs.Trace.dur_us) 0.0 ss
        in
        let max_ =
          List.fold_left (fun acc s -> Float.max acc s.Ucp_obs.Trace.dur_us) 0.0 ss
        in
        Ucp_util.Table.add_row agg
          [
            name;
            string_of_int n;
            Printf.sprintf "%.2f" (total /. 1e3);
            Printf.sprintf "%.3f" (total /. 1e3 /. float_of_int n);
            Printf.sprintf "%.2f" (max_ /. 1e3);
          ])
      names;
    Printf.printf "%d spans in %s\n\n%s\n" (List.length spans) file
      (Ucp_util.Table.render agg);
    (* integer span-arg totals, e.g. the simplex pivot count: lets a
       recorded trace be cross-checked against the metrics counters *)
    let arg_totals = Hashtbl.create 16 in
    List.iter
      (fun (s : Ucp_obs.Trace.span) ->
        List.iter
          (fun (k, v) ->
            match v with
            | Ucp_obs.Trace.Int n ->
              let key = s.Ucp_obs.Trace.span_name ^ "." ^ k in
              Hashtbl.replace arg_totals key
                (n + try Hashtbl.find arg_totals key with Not_found -> 0)
            | Ucp_obs.Trace.Float _ | Ucp_obs.Trace.Str _ -> ())
          s.Ucp_obs.Trace.args)
      spans;
    let totals =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) arg_totals [])
    in
    if totals <> [] then begin
      print_string "span-arg totals:\n";
      List.iter (fun (k, v) -> Printf.printf "  %s=%d\n" k v) totals;
      print_newline ()
    end;
    (* slowest individual spans per name *)
    let render_arg (k, v) =
      match v with
      | Ucp_obs.Trace.Int n -> Printf.sprintf "%s=%d" k n
      | Ucp_obs.Trace.Float x -> Printf.sprintf "%s=%g" k x
      | Ucp_obs.Trace.Str s -> Printf.sprintf "%s=%s" k s
    in
    let slow =
      Ucp_util.Table.create [ "span"; "dur (ms)"; "start (ms)"; "tid"; "args" ]
    in
    List.iter
      (fun name ->
        let ss =
          List.sort
            (fun (a : Ucp_obs.Trace.span) b ->
              compare b.Ucp_obs.Trace.dur_us a.Ucp_obs.Trace.dur_us)
            (Hashtbl.find by_name name)
        in
        List.iteri
          (fun i (s : Ucp_obs.Trace.span) ->
            if i < top then
              Ucp_util.Table.add_row slow
                [
                  name;
                  Printf.sprintf "%.3f" (s.Ucp_obs.Trace.dur_us /. 1e3);
                  Printf.sprintf "%.2f" (s.Ucp_obs.Trace.ts_us /. 1e3);
                  string_of_int s.Ucp_obs.Trace.tid;
                  String.concat " " (List.map render_arg s.Ucp_obs.Trace.args);
                ])
          ss)
      names;
    Printf.printf "top %d slowest spans per name:\n%s" top
      (Ucp_util.Table.render slow)
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file written by $(b,--trace).")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N" ~doc:"Slowest spans to list per span name (default 5).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Summarize a recorded span trace: per-name counts and durations, \
          integer span-arg totals (e.g. simplex pivots), and the slowest \
          individual spans.")
    Term.(const run $ file $ top)

let top_cmd =
  let run socket interval iterations =
    if iterations < 0 then begin
      Printf.eprintf "ucp: top: iterations must be >= 0\n";
      exit 124
    end;
    let module P = Ucp_serve.Protocol in
    let module E = Ucp_obs.Expo in
    let fetch () =
      match
        ( Ucp_serve.Client.query ~retries:4 ~socket P.Health,
          Ucp_serve.Client.query ~retries:4 ~socket P.Metrics )
      with
      | Ok (P.Health_stats h), Ok (P.Metrics_text text) -> (
        match E.parse text with
        | Ok samples -> Ok (h, samples)
        | Error msg -> Error (Printf.sprintf "unparseable exposition: %s" msg))
      | Error msg, _ | _, Error msg -> Error msg
      | Ok _, Ok _ -> Error "unexpected response kind"
    in
    let render (h : P.health) samples =
      let stat k = Option.value ~default:0 (List.assoc_opt k h.P.counters) in
      Printf.printf "ucp top — %s\n" socket;
      Printf.printf
        "requests %d | cache %d | store %d | computed %d | shed %d | queue %d | \
         worker restarts %d | slow %d\n\n"
        (stat "requests_total") (stat "cache_hits") (stat "store_hits")
        (stat "computed_total") (stat "shed_total") (stat "queue_depth")
        (stat "worker_restarts")
        (stat "serve_slow_requests_total");
      let table =
        Ucp_util.Table.create
          [ "tier"; "count"; "p50 (s)"; "p95 (s)"; "p99 (s)"; "mean (s)" ]
      in
      let hists = E.histograms samples in
      List.iter
        (fun (hist : E.hist) ->
          if hist.E.h_base = "serve_latency_s" then begin
            let tier =
              Option.value ~default:"?" (List.assoc_opt "tier" hist.E.h_labels)
            in
            let q p =
              E.fmt_float (E.quantile ~bounds:hist.E.h_bounds ~counts:hist.E.h_counts p)
            in
            let mean =
              if hist.E.h_count = 0 then "-"
              else E.fmt_float (hist.E.h_sum /. float_of_int hist.E.h_count)
            in
            Ucp_util.Table.add_row table
              [ tier; string_of_int hist.E.h_count; q 0.50; q 0.95; q 0.99; mean ]
          end)
        hists;
      print_string (Ucp_util.Table.render table);
      let dropped =
        List.assoc_opt "trace_spans_dropped_total" h.P.counters
      in
      (match dropped with
      | Some n when n > 0 -> Printf.printf "\ntrace spans dropped: %d\n" n
      | _ -> ());
      print_newline ();
      flush stdout
    in
    let rec loop n =
      (* refresh in place after the first paint; a single iteration
         (the CI smoke) stays plain printable text *)
      if n > 1 then print_string "\027[2J\027[H";
      (match fetch () with
      | Ok (h, samples) -> render h samples
      | Error msg ->
        Printf.eprintf "ucp: top: %s\n" msg;
        exit 1);
      if iterations = 0 || n < iterations then begin
        Unix.sleepf interval;
        loop (n + 1)
      end
    in
    loop 1
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh interval (default 2.0).")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after N refreshes; 0 (default) refreshes until interrupted.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live health and latency view of a running daemon: request/tier \
          counters plus per-tier p50/p95/p99 service latency, computed from \
          the daemon's Prometheus metrics exposition.")
    Term.(const run $ socket_arg $ interval $ iterations)

let bench_check_cmd =
  let run baseline current factor slack =
    match
      Ucp_core.Bench_gate.compare_files ?factor ?slack ~baseline ~current ()
    with
    | Error msg ->
      Printf.eprintf "ucp: bench-check: %s\n" msg;
      exit 124
    | exception Invalid_argument msg ->
      Printf.eprintf "ucp: bench-check: %s\n" msg;
      exit 124
    | Ok outcome ->
      print_string (Ucp_core.Bench_gate.render outcome);
      if not outcome.Ucp_core.Bench_gate.passed then exit 5
  in
  let baseline =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Checked-in trajectory to gate against (e.g. BENCH_10.json).")
  in
  let current =
    Arg.(
      required
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE" ~doc:"Freshly measured trajectory file.")
  in
  let factor =
    Arg.(
      value
      & opt (some float) None
      & info [ "factor" ] ~docv:"X"
          ~doc:"Multiplicative tolerance on time-like fields (default 3.0).")
  in
  let slack =
    Arg.(
      value
      & opt (some float) None
      & info [ "slack" ] ~docv:"SECS"
          ~doc:"Absolute slack added to the limit (default 0.25).")
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Perf-regression gate: compare a fresh benchmark JSON against a \
          checked-in BENCH_*.json baseline.  Fields ending in _s (and ratio) \
          must satisfy current <= baseline * factor + slack; counts and \
          precision numbers are informational.  Exits 0 when within band, 5 \
          on a regression, 124 on unreadable input.")
    Term.(const run $ baseline $ current $ factor $ slack)

let () =
  let doc = "WCET-safe, energy-oriented instruction-cache prefetching (DAC 2013)" in
  let info = Cmd.info "ucp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            tables_cmd;
            analyze_cmd;
            optimize_cmd;
            simulate_cmd;
            baselines_cmd;
            dump_cmd;
            ipet_cmd;
            persistence_cmd;
            verify_cmd;
            experiment_cmd;
            fuzz_cmd;
            serve_cmd;
            query_cmd;
            top_cmd;
            bench_check_cmd;
            trace_cmd;
          ]))
